// Stream-framing and engine-layer tests: the chunked scan path must frame
// records exactly like raw_filter::push - empty records, trailing records,
// custom separators, separator bytes masked inside string literals, and
// chunk boundaries that split records anywhere (mid-token, mid-escape).
#include "core/filter_engine.hpp"

#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "core/expr.hpp"
#include "core/raw_filter.hpp"
#include "data/stream.hpp"
#include "numrange/range_spec.hpp"
#include "util/error.hpp"

namespace jrf::core {
namespace {

expr_ptr temperature_filter() {
  return conj({string_leaf("temperature", 1),
               value_leaf(numrange::range_spec::real_range("0.7", "35.1"))});
}

expr_ptr grouped_filter() {
  return make_group(
      group_kind::scope,
      {string_spec{string_technique::substring, 1, "temperature"},
       value_spec{numrange::range_spec::real_range("0.7", "35.1"), {}}});
}

std::vector<bool> scalar_reference(const expr_ptr& expr, std::string_view stream,
                                   filter_options options = {}) {
  raw_filter rf(expr, options);
  return rf.filter_stream(stream);
}

/// Both engine kinds must match the raw_filter reference, for whole-stream
/// scans and for every chunk granularity.
void expect_framing_equivalence(const expr_ptr& expr, std::string_view stream,
                                filter_options options = {}) {
  const std::vector<bool> expected = scalar_reference(expr, stream, options);
  for (const engine_kind kind : {engine_kind::scalar, engine_kind::chunked}) {
    auto engine = make_filter_engine(kind, expr, options);
    EXPECT_EQ(engine->filter_stream(stream), expected) << to_string(kind);

    for (const std::size_t chunk : {std::size_t{1}, std::size_t{2},
                                    std::size_t{3}, std::size_t{7},
                                    std::size_t{64}}) {
      engine->reset();
      engine->clear_decisions();
      data::for_each_chunk(stream, chunk,
                           [&](std::string_view c) { engine->scan_chunk(c); });
      engine->finish();
      EXPECT_EQ(engine->take_decisions(), expected)
          << to_string(kind) << " chunk=" << chunk;
    }
  }
}

TEST(FilterEngine, EmptyRecordsProduceNoDecision) {
  expect_framing_equivalence(
      temperature_filter(),
      "\n\n{\"temperature\":5.0}\n\n\n{\"temperature\":99.0}\n\n");
}

TEST(FilterEngine, TrailingRecordWithoutSeparatorIsFlushed) {
  expect_framing_equivalence(
      temperature_filter(),
      "{\"temperature\":5.0}\n{\"temperature\":12.5}");
}

TEST(FilterEngine, CustomSeparator) {
  filter_options options;
  options.separator = ';';
  expect_framing_equivalence(
      temperature_filter(),
      "{\"temperature\":5.0};{\"temperature\":99.0};{\"temperature\":1.2}",
      options);
}

TEST(FilterEngine, SeparatorBytesInsideStringsAreMasked) {
  // Literal newlines inside string content must not split the record; the
  // escaped quote before one of them must not end the string either.
  const std::string stream =
      "{\"note\":\"line1\nline2\",\"temperature\":5.0}\n"
      "{\"note\":\"say \\\"hi\\\"\nmore\",\"temperature\":99.0}\n"
      "{\"temperature\":2.0}\n";
  expect_framing_equivalence(temperature_filter(), stream);
  expect_framing_equivalence(grouped_filter(), stream);
}

TEST(FilterEngine, BackslashRunsKeepEscapeParity) {
  // \\" closes the string (escaped backslash then a real quote), \\\" does
  // not; a chunk boundary between the backslashes must not lose parity.
  const std::string stream =
      "{\"a\":\"x\\\\\",\"temperature\":5.0}\n"
      "{\"b\":\"y\\\\\\\"\n\",\"temperature\":6.0}\n";
  expect_framing_equivalence(temperature_filter(), stream);
}

TEST(FilterEngine, UnterminatedStringAtEndOfStream) {
  // The synthesized flush separator lands inside the open literal, so the
  // scalar path emits a masked (false) decision; chunked must agree.
  const std::string stream =
      "{\"temperature\":5.0}\n{\"note\":\"open string, temperature 5";
  expect_framing_equivalence(temperature_filter(), stream);
}

TEST(FilterEngine, ChunkBoundariesSplitRecordsMidToken) {
  // Number tokens, search strings and group scopes all straddle chunk
  // boundaries at every granularity expect_framing_equivalence sweeps.
  std::string stream;
  for (int i = 0; i < 50; ++i)
    stream += "{\"e\":[{\"n\":\"temperature\",\"v\":" +
              std::to_string(0.5 + i) + "}]}\n";
  expect_framing_equivalence(grouped_filter(), stream);
}

TEST(FilterEngine, AcceptsMatchesRawFilter) {
  const expr_ptr expr = temperature_filter();
  raw_filter reference(expr);
  for (const engine_kind kind : {engine_kind::scalar, engine_kind::chunked}) {
    auto engine = make_filter_engine(kind, expr);
    for (const std::string& record :
         {std::string{"{\"temperature\":5.0}"},
          std::string{"{\"temperature\":99.0}"}, std::string{},
          std::string{"{\"temperature\":5.0}\n{\"temperature\":99.0}"},
          std::string{"{\"note\":\"temperature 5.0 inside a string"}}) {
      EXPECT_EQ(engine->accepts(record), reference.accepts(record))
          << to_string(kind) << " record=" << record;
    }
  }
}

TEST(FilterEngine, ValueTokenEndingAtSeparatorFires) {
  // The number token terminates exactly at the record separator; the value
  // engine samples its DFA on that byte.
  const expr_ptr expr =
      leaf(value_spec{numrange::range_spec::real_range("0.7", "35.1"), {}});
  expect_framing_equivalence(expr, "5.0\n99.0\n12.5");
}

TEST(FilterEngine, CloneSharesQueryButNotState) {
  auto engine = make_filter_engine(engine_kind::chunked, grouped_filter());
  engine->scan_chunk(std::string_view{"{\"e\":[{\"n\":\"temperatu"});

  auto lane = engine->clone();
  EXPECT_EQ(lane->expression().get(), engine->expression().get());
  EXPECT_TRUE(lane->decisions().empty());

  // The clone starts mid-record-free: the original's partial record must
  // not leak into the clone's first record.
  lane->scan_chunk(std::string_view{"{\"e\":[{\"n\":\"temperature\",\"v\":5}]}\n"});
  engine->scan_chunk(std::string_view{"re\",\"v\":5}]}\n"});
  ASSERT_EQ(lane->decisions().size(), 1u);
  ASSERT_EQ(engine->decisions().size(), 1u);
  EXPECT_TRUE(lane->decisions().front());
  EXPECT_TRUE(engine->decisions().front());
}

TEST(FilterEngine, ReusableAfterMaskedFlush) {
  // finish() on a record that left a string literal open emits a false
  // decision AND leaves the engine ready for a fresh stream - both kinds.
  for (const engine_kind kind : {engine_kind::scalar, engine_kind::chunked}) {
    auto engine = make_filter_engine(kind, temperature_filter());
    engine->scan_chunk(std::string_view{"{\"note\":\"open"});
    engine->finish();
    engine->scan_chunk(std::string_view{"{\"temperature\":5.0}\n"});
    engine->finish();
    const std::vector<bool> expected{false, true};
    EXPECT_EQ(engine->decisions(), expected) << to_string(kind);
  }
}

TEST(FilterEngine, ResetDropsPartialRecord) {
  auto engine = make_filter_engine(engine_kind::chunked, temperature_filter());
  engine->scan_chunk(std::string_view{"{\"temperature\":5.0"});
  engine->reset();
  engine->finish();  // nothing buffered -> nothing flushed
  EXPECT_TRUE(engine->decisions().empty());
  engine->scan_chunk(std::string_view{"{\"temperature\":5.0}\n"});
  ASSERT_EQ(engine->decisions().size(), 1u);
  EXPECT_TRUE(engine->decisions().front());
}

TEST(FilterEngine, NullExpressionThrows) {
  EXPECT_THROW(make_filter_engine(engine_kind::scalar, nullptr), error);
  EXPECT_THROW(make_filter_engine(engine_kind::chunked, nullptr), error);
}

/// expect_framing_equivalence swept across every SIMD tier this host can
/// execute: the vector kernels' tail handling must not shift a single
/// decision.
void expect_equivalence_all_levels(const expr_ptr& expr,
                                   std::string_view stream) {
  for (const simd::simd_level level : simd::available_levels()) {
    filter_options options;
    options.simd = level;
    expect_framing_equivalence(expr, stream, options);
  }
}

TEST(FilterEngine, VectorWidthBoundaryRecordLengths) {
  // Records of exactly 15/16/17/31/32/33 bytes surround the 16- and
  // 32-byte vector widths: the candidate scans and framing must handle
  // full-vector, one-short and one-over tails identically to scalar.
  const expr_ptr expr = conj({string_leaf("tm", 1)});
  for (const std::size_t len : {15u, 16u, 17u, 31u, 32u, 33u}) {
    for (const std::size_t at : {0u, 7u, 13u, 29u}) {
      if (at + 2 > len) continue;
      std::string record(len, '.');
      record[at] = 't';
      record[at + 1] = 'm';
      std::string stream = record + "\n" + record + "\n";
      expect_equivalence_all_levels(expr, stream);
      // Same records with no match at all.
      expect_equivalence_all_levels(expr,
                                    std::string(len, '.') + "\n");
    }
  }
}

TEST(FilterEngine, MatchStraddlesChunkBoundary) {
  // "temperature" placed so it begins in one 32-byte block and ends in
  // the next - every offset around both vector widths.
  for (const std::size_t at : {5u, 10u, 14u, 15u, 16u, 21u, 26u, 30u, 31u,
                               32u, 33u, 40u}) {
    std::string record(64, 'x');
    record.replace(at, 11, "temperature");
    const std::string stream = record + "\n";
    expect_equivalence_all_levels(conj({string_leaf("temperature", 1)}),
                                  stream);
    expect_equivalence_all_levels(conj({string_leaf("temperature", 2)}),
                                  stream);
    expect_equivalence_all_levels(
        conj({dfa_string_leaf("temperature")}), stream);
    expect_equivalence_all_levels(
        conj({string_leaf("temperature", 11)}), stream);
  }
}

TEST(FilterEngine, EscapedQuoteAtRecordTail) {
  // Escapes at the very end of a record (and of a vector chunk): the
  // framing scan and the event scan both special-case the byte after a
  // backslash; at the record tail that byte is the separator itself.
  const std::vector<std::string> streams = {
      // Escaped quote as the last content byte.
      "{\"msg\":\"tail\\\"\",\"temperature\":5.0}\n",
      // Backslash as the final record byte (open literal, masked flush).
      "{\"temperature\":5.0}\n{\"msg\":\"trailing\\",
      // Escaped backslash then closing quote at a 32-byte boundary.
      "{\"padpadpadpadpad\":\"0123456\\\\\",\"temperature\":7.0}\n",
      // Double records whose escapes land on chunk edges at width 1-64.
      "{\"a\":\"\\\"\\\"\\\"\"}\n{\"temperature\":5.0,\"b\":\"\\\\\"}\n",
  };
  for (const std::string& stream : streams) {
    expect_equivalence_all_levels(temperature_filter(), stream);
    expect_equivalence_all_levels(grouped_filter(), stream);
  }
}

TEST(FilterEngine, SimdLevelKnobProducesIdenticalDecisions) {
  // The engine-selection knob end to end: same stream, every level, both
  // a flat and a grouped filter, decisions byte-identical.
  const std::string stream =
      "{\"e\":[{\"n\":\"temperature\",\"v\":21.5}],\"x\":\"\\\"esc\\\"\"}\n"
      "{\"e\":[{\"n\":\"temperature\",\"v\":99.0}]}\n"
      "{\"e\":[{\"n\":\"humidity\",\"v\":3.2}]}\n";
  expect_equivalence_all_levels(temperature_filter(), stream);
  expect_equivalence_all_levels(grouped_filter(), stream);
}

TEST(FilterEngine, RawFilterCopyIsIndependent) {
  raw_filter original(temperature_filter());
  original.push('{');
  raw_filter copy(original);
  // The copy starts reset; both decide identically afterwards.
  EXPECT_TRUE(copy.accepts("{\"temperature\":5.0}"));
  EXPECT_FALSE(copy.accepts("{\"temperature\":99.0}"));
  EXPECT_TRUE(original.accepts("{\"temperature\":5.0}"));
}

}  // namespace
}  // namespace jrf::core
