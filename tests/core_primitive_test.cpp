// Unit tests for the raw-filter primitives (paper Section III-A/III-B).
#include "core/primitive.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "numrange/range_spec.hpp"
#include "util/error.hpp"

namespace jrf::core {
namespace {

std::vector<int> fire_positions(primitive_engine& engine, std::string_view text) {
  engine.reset();
  std::vector<int> out;
  for (std::size_t i = 0; i < text.size(); ++i)
    if (engine.step(static_cast<unsigned char>(text[i])))
      out.push_back(static_cast<int>(i));
  return out;
}

bool fires_anywhere(const primitive_spec& spec, std::string_view text) {
  const auto engine = make_engine(spec);
  return !fire_positions(*engine, text).empty();
}

string_spec substr(std::string text, int block) {
  return {string_technique::substring, block, std::move(text)};
}

string_spec dfa_spec(std::string text) {
  return {string_technique::dfa, 0, std::move(text)};
}

// ---------------------------------------------------------------- substrings

TEST(StringSpec, Table4SubstringsB1) {
  // Paper Table IV: B = 1 gives the distinct characters.
  const auto grams = substr("temperature", 1).substrings();
  const std::vector<std::string> expected{"t", "e", "m", "p", "r", "a", "u"};
  EXPECT_EQ(grams, expected);
}

TEST(StringSpec, Table4SubstringsB2) {
  const auto grams = substr("temperature", 2).substrings();
  const std::vector<std::string> expected{"te", "em", "mp", "pe", "er",
                                          "ra", "at", "tu", "ur", "re"};
  EXPECT_EQ(grams, expected);
}

TEST(StringSpec, Table4SubstringsB3) {
  const auto grams = substr("temperature", 3).substrings();
  const std::vector<std::string> expected{"tem", "emp", "mpe", "per", "era",
                                          "rat", "atu", "tur", "ure"};
  EXPECT_EQ(grams, expected);
}

TEST(StringSpec, FullLengthSingleSubstring) {
  const auto grams = substr("temperature", 11).substrings();
  ASSERT_EQ(grams.size(), 1u);
  EXPECT_EQ(grams[0], "temperature");
}

TEST(StringSpec, ThresholdIsNMinusBPlus1) {
  EXPECT_EQ(substr("temperature", 1).threshold(), 11);
  EXPECT_EQ(substr("temperature", 2).threshold(), 10);
  EXPECT_EQ(substr("temperature", 11).threshold(), 1);
}

TEST(StringSpec, Notation) {
  EXPECT_EQ(substr("light", 1).to_string(), "s1(\"light\")");
  EXPECT_EQ(substr("light", 5).to_string(), "s5(\"light\")");
  EXPECT_EQ(dfa_spec("light").to_string(), "dfa(\"light\")");
}

// ------------------------------------------------------------ exact matching

class StringMatchExact : public ::testing::TestWithParam<primitive_spec> {};

TEST_P(StringMatchExact, FindsTheNeedle) {
  EXPECT_TRUE(fires_anywhere(GetParam(), R"({"n":"temperature","v":"3"})"));
}

TEST_P(StringMatchExact, FiresAtLastByteOfOccurrence) {
  const auto engine = make_engine(GetParam());
  const std::string text = "xxtemperaturexx";
  const auto positions = fire_positions(*engine, text);
  ASSERT_FALSE(positions.empty());
  // First fire at the final 'e' (index 2 + 11 - 1 = 12).
  EXPECT_EQ(positions.front(), 12);
}

TEST_P(StringMatchExact, NoFireOnUnrelatedText) {
  EXPECT_FALSE(fires_anywhere(GetParam(), R"({"n":"humidity","v":"12"})"));
}

TEST_P(StringMatchExact, FindsBackToBackOccurrences) {
  const auto engine = make_engine(GetParam());
  EXPECT_EQ(fire_positions(*engine, "temperaturetemperature").size(), 2u);
}

INSTANTIATE_TEST_SUITE_P(
    Techniques, StringMatchExact,
    ::testing::Values(primitive_spec{dfa_spec("temperature")},
                      primitive_spec{substr("temperature", 11)}),
    [](const auto& info) {
      return std::get<string_spec>(info.param).technique == string_technique::dfa
                 ? "dfa"
                 : "full";
    });

TEST(DfaStringMatch, OverlappingOccurrences) {
  // "aba" in "ababa" occurs at positions 2 and 4 (overlap at the shared 'a').
  const auto engine = make_engine(primitive_spec{dfa_spec("aba")});
  const auto positions = fire_positions(*engine, "ababa");
  EXPECT_EQ(positions, (std::vector<int>{2, 4}));
}

TEST(FullStringMatch, StatePersistsAcrossBuffer) {
  // The needle split across step calls is still found: the shift buffer is
  // continuous over the stream.
  const auto engine = make_engine(primitive_spec{substr("abcd", 4)});
  engine->reset();
  bool fired = false;
  for (const char c : std::string("xabcdx"))
    fired = engine->step(static_cast<unsigned char>(c)) || fired;
  EXPECT_TRUE(fired);
}

// ----------------------------------------------------- approximate B < N run

TEST(SubstringMatch, B1IsCharacterRunFilter) {
  // B = 1 counts consecutive bytes from the character set; any permutation
  // of the needle's characters of the right length fires (the paper's
  // "tolls_amount" vs "total_amount" anagram effect).
  EXPECT_TRUE(fires_anywhere(primitive_spec{substr("tolls_amount", 1)},
                             R"("total_amount":12)"));
  // B = 2 requires genuine bigrams and is immune to this collision.
  EXPECT_FALSE(fires_anywhere(primitive_spec{substr("tolls_amount", 2)},
                              R"("total_amount":12)"));
  // Both find the true needle.
  EXPECT_TRUE(fires_anywhere(primitive_spec{substr("tolls_amount", 1)},
                             R"("tolls_amount":12)"));
  EXPECT_TRUE(fires_anywhere(primitive_spec{substr("tolls_amount", 2)},
                             R"("tolls_amount":12)"));
}

TEST(SubstringMatch, B2AcceptsGramPermutations) {
  // False positives are possible when foreign text happens to chain N-B+1
  // valid bigrams; "rere" contains "re", "er", "re" = 3 hits < threshold
  // for "temperature" (10), so no fire.
  EXPECT_FALSE(fires_anywhere(primitive_spec{substr("temperature", 2)}, "rerere"));
  // ...but a full-length chain of valid bigrams fires even if it is not the
  // needle: "temperatemp" chains grams of "temperature"? It does not - the
  // bigram "at" then "te" breaks the chain. Use a genuine chain instead:
  // "tematureture" style collisions are construction-dependent; verify the
  // guarantee direction only: the needle always fires.
  EXPECT_TRUE(fires_anywhere(primitive_spec{substr("temperature", 2)},
                             "xxtemperaturexx"));
}

TEST(SubstringMatch, CounterResetsOnMiss) {
  const auto engine = make_engine(primitive_spec{substr("abc", 1)});
  engine->reset();
  // a, b, miss, c: counter reaches 2, resets, then 1 -> never fires.
  EXPECT_FALSE(engine->step('a'));
  EXPECT_FALSE(engine->step('b'));
  EXPECT_FALSE(engine->step('x'));
  EXPECT_FALSE(engine->step('c'));
  // a, c, b fires: B = 1 ignores order.
  engine->reset();
  EXPECT_FALSE(engine->step('a'));
  EXPECT_FALSE(engine->step('c'));
  EXPECT_TRUE(engine->step('b'));
}

TEST(SubstringMatch, DominatesExactMatcher) {
  // Wherever the full-length matcher fires, every B-gram matcher fires too
  // (possibly among extra false positives) - the paper's no-false-negative
  // guarantee at primitive level.
  const std::vector<std::string> corpus{
      R"({"n":"temperature","v":"35.2"})",
      "temperature",
      "xxtemperaturexx",
      "the temperature today",
      "temperatemperature",
  };
  for (const std::string& text : corpus) {
    for (int b = 1; b <= 11; ++b) {
      SCOPED_TRACE("B=" + std::to_string(b) + " text=" + text);
      EXPECT_TRUE(fires_anywhere(primitive_spec{substr("temperature", b)}, text));
    }
  }
}

TEST(SubstringMatch, SingleCharacterNeedle) {
  const auto engine = make_engine(primitive_spec{substr("x", 1)});
  const auto positions = fire_positions(*engine, "axbx");
  EXPECT_EQ(positions, (std::vector<int>{1, 3}));
}

TEST(SubstringMatch, RejectsInvalidBlock) {
  EXPECT_THROW(make_engine(primitive_spec{substr("abc", 0)}), error);
  EXPECT_THROW(make_engine(primitive_spec{substr("abc", 4)}), error);
  EXPECT_THROW(make_engine(primitive_spec{substr("", 1)}), error);
}

// ------------------------------------------------------------- value filter

value_spec int_range(std::string_view lo, std::string_view hi) {
  return {numrange::range_spec::integer_range(lo, hi), {}};
}

value_spec real_range(std::string_view lo, std::string_view hi) {
  return {numrange::range_spec::real_range(lo, hi), {}};
}

TEST(ValueFilter, FiresOnTokenTerminator) {
  const auto engine = make_engine(primitive_spec{int_range("12", "49")});
  // "12," - the fire pulse arrives at the ',' that ends the token.
  const auto positions = fire_positions(*engine, "12,");
  EXPECT_EQ(positions, (std::vector<int>{2}));
}

TEST(ValueFilter, RejectsOutOfRange) {
  const auto engine = make_engine(primitive_spec{int_range("12", "49")});
  EXPECT_TRUE(fire_positions(*engine, "50,").empty());
  EXPECT_TRUE(fire_positions(*engine, "11,").empty());
  EXPECT_TRUE(fire_positions(*engine, "713,").empty());
}

TEST(ValueFilter, BoundsInclusive) {
  const auto engine = make_engine(primitive_spec{int_range("12", "49")});
  EXPECT_FALSE(fire_positions(*engine, "12,").empty());
  EXPECT_FALSE(fire_positions(*engine, "49,").empty());
}

TEST(ValueFilter, QuotedNumbersStillMatch) {
  // SenML stores numbers as strings; the quote is a non-token byte, so the
  // token is sampled at the closing quote exactly like at a comma.
  const auto engine = make_engine(primitive_spec{real_range("0.7", "35.1")});
  EXPECT_FALSE(fire_positions(*engine, R"("v":"12")").empty());
  EXPECT_TRUE(fire_positions(*engine, R"("v":"35.2")").empty());
}

TEST(ValueFilter, RunningExampleListing1) {
  // Paper running example: [0.7, 35.1] over the Listing 1 values.
  const auto engine = make_engine(primitive_spec{real_range("0.7", "35.1")});
  EXPECT_TRUE(fire_positions(*engine, "35.2,").empty());   // temperature
  EXPECT_FALSE(fire_positions(*engine, "12,").empty());    // humidity
  EXPECT_TRUE(fire_positions(*engine, "713,").empty());    // light
  EXPECT_TRUE(fire_positions(*engine, "305.01,").empty()); // dust
  EXPECT_FALSE(fire_positions(*engine, "20,").empty());    // airquality
}

TEST(ValueFilter, ExponentEscapeHatch) {
  // Any digits-then-e token is accepted regardless of range (paper rule:
  // false positives allowed, false negatives never).
  const auto engine = make_engine(primitive_spec{int_range("12", "49")});
  EXPECT_FALSE(fire_positions(*engine, "9e3,").empty());
  EXPECT_FALSE(fire_positions(*engine, "1E-2,").empty());
  // A lone 'e' with no digits is not a number token worth accepting.
  EXPECT_TRUE(fire_positions(*engine, "e3,").empty());
}

TEST(ValueFilter, TokenEndsAtEveryNonTokenByte) {
  const auto engine = make_engine(primitive_spec{int_range("12", "49")});
  // Letters split tokens: "a12a" yields token "12".
  EXPECT_FALSE(fire_positions(*engine, "a12a").empty());
  // Digits absorbed into a longer out-of-range token do not fire: "120".
  EXPECT_TRUE(fire_positions(*engine, "a120a").empty());
}

TEST(ValueFilter, IntegerKindRejectsFractionSyntax) {
  const auto engine = make_engine(primitive_spec{int_range("12", "49")});
  EXPECT_TRUE(fire_positions(*engine, "12.5,").empty());
}

TEST(ValueFilter, RealKindAcceptsIntegerSyntax) {
  const auto engine = make_engine(primitive_spec{real_range("0.7", "35.1")});
  EXPECT_FALSE(fire_positions(*engine, "12,").empty());
}

TEST(ValueFilter, NegativeBounds) {
  const auto engine = make_engine(
      primitive_spec{value_spec{numrange::range_spec::real_range("-12.5", "43.1"), {}}});
  EXPECT_FALSE(fire_positions(*engine, "-3.2,").empty());
  EXPECT_TRUE(fire_positions(*engine, "-13,").empty());
  EXPECT_FALSE(fire_positions(*engine, "0,").empty());
}

TEST(ValueFilter, BackToBackTokens) {
  const auto engine = make_engine(primitive_spec{int_range("12", "49")});
  const auto positions = fire_positions(*engine, "12,50,13,");
  EXPECT_EQ(positions, (std::vector<int>{2, 8}));
}

}  // namespace
}  // namespace jrf::core
