// The multi-tenant query_set (PR 8 tentpole): registry semantics (stable
// monotone ids, dense order, revision bumps), spec_key interning (K
// duplicate queries share ONE engine pool and fan out through
// engine_subscribers), and the acceptance gate - every member's decision
// column byte-identical to running that query alone, across the riotbench
// queries, all three datasets, and every SIMD tier this host executes
// (the forced-scalar CI leg runs the same sweep with one available level).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/filter_engine.hpp"
#include "core/query_set.hpp"
#include "core/raw_filter.hpp"
#include "core/simd.hpp"
#include "data/smartcity.hpp"
#include "data/stream.hpp"
#include "data/taxi.hpp"
#include "data/twitter.hpp"
#include "query/compile.hpp"
#include "query/riotbench.hpp"
#include "util/error.hpp"

namespace jrf {
namespace {

std::vector<std::string> evaluation_streams(int records) {
  return {
      data::smartcity_generator().stream(records),
      data::taxi_generator().stream(records),
      data::twitter_generator().stream(records),
  };
}

std::vector<core::expr_ptr> riotbench_exprs() {
  return {query::compile_default(query::riotbench::qs0()),
          query::compile_default(query::riotbench::qs1()),
          query::compile_default(query::riotbench::qt()),
          query::compile_default(query::riotbench::q0())};
}

TEST(QuerySet, StableMonotoneIdsAndDenseOrder) {
  core::query_set set;
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.revision(), 0u);

  const auto exprs = riotbench_exprs();
  const core::query_id a = set.add(exprs[0]);
  const core::query_id b = set.add(exprs[1]);
  const core::query_id c = set.add(exprs[2]);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(set.size(), 3u);
  EXPECT_EQ(set.revision(), 3u);
  EXPECT_EQ(set.ids(), (std::vector<core::query_id>{a, b, c}));
  EXPECT_EQ(set.ordinal(b), 1u);
  EXPECT_EQ(set.query(b), exprs[1]);

  // Removal shifts later queries down one dense slot; the id never comes
  // back even after the slot frees up.
  EXPECT_TRUE(set.remove(b));
  EXPECT_FALSE(set.remove(b));
  EXPECT_FALSE(set.contains(b));
  EXPECT_EQ(set.ids(), (std::vector<core::query_id>{a, c}));
  EXPECT_EQ(set.ordinal(c), 1u);
  const core::query_id d = set.add(exprs[3]);
  EXPECT_GT(d, c);
  EXPECT_EQ(set.revision(), 5u);

  EXPECT_THROW((void)set.ordinal(b), jrf::error);
  EXPECT_THROW((void)set.query(b), jrf::error);
  EXPECT_THROW(set.add(nullptr), jrf::error);
}

TEST(QuerySet, EmptySetCannotCompile) {
  core::query_set set;
  EXPECT_THROW((void)set.compile(), jrf::error);
  EXPECT_THROW((void)set.make_engine(core::engine_kind::chunked), jrf::error);
}

TEST(QuerySet, DuplicateQueriesInternToOneEnginePool) {
  // K copies of the same query must compile to exactly the engine pool of
  // ONE copy, with every copy subscribed to every engine it references.
  const core::expr_ptr expr = query::compile_default(query::riotbench::qs0());
  const core::compiled_layout one = core::compiled_layout::compile(*expr);

  constexpr std::size_t kCopies = 7;
  core::query_set set;
  for (std::size_t i = 0; i < kCopies; ++i) set.add(expr);

  const core::compiled_layout shared = set.compile();
  EXPECT_EQ(shared.query_count(), kCopies);
  EXPECT_EQ(shared.engines.size(), one.engines.size());
  EXPECT_EQ(shared.engine_keys.size(), one.engines.size());
  EXPECT_EQ(shared.groups.size(), one.groups.size());
  for (const auto& subscribers : shared.engine_subscribers) {
    ASSERT_EQ(subscribers.size(), kCopies);
    for (std::size_t i = 0; i < kCopies; ++i) EXPECT_EQ(subscribers[i], i);
  }

  // And the K decision columns are identical to each other and to the
  // standalone run.
  const std::string stream = data::smartcity_generator().stream(200);
  core::raw_filter reference(expr);
  const std::vector<bool> expected = reference.filter_stream(stream);
  auto engine = set.make_engine(core::engine_kind::chunked);
  engine->filter_stream(stream);
  for (std::size_t q = 0; q < kCopies; ++q)
    EXPECT_EQ(engine->decision_column(q), expected) << "copy " << q;
}

TEST(QuerySet, DisjointQueriesKeepDisjointSubscriptions) {
  core::query_set set;
  set.add(core::string_leaf("temperature", 2));
  set.add(core::string_leaf("humidity", 2));
  const core::compiled_layout layout = set.compile();
  ASSERT_EQ(layout.engines.size(), 2u);
  EXPECT_EQ(layout.engine_subscribers[0],
            (std::vector<std::size_t>{0}));
  EXPECT_EQ(layout.engine_subscribers[1],
            (std::vector<std::size_t>{1}));

  // A third query referencing BOTH specs adds no engine - full interning.
  set.add(core::conj({core::string_leaf("temperature", 2),
                      core::string_leaf("humidity", 2)}));
  const core::compiled_layout merged = set.compile();
  EXPECT_EQ(merged.engines.size(), 2u);
  EXPECT_EQ(merged.engine_subscribers[0],
            (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(merged.engine_subscribers[1],
            (std::vector<std::size_t>{1, 2}));
}

TEST(QuerySet, SingleQueryByteIdenticalToStandaloneEverywhere) {
  // The N=1 acceptance gate: a one-query set IS the pre-multi-tenant
  // engine, byte for byte, across riotbench x datasets x SIMD tiers and
  // both engine kinds.
  const auto streams = evaluation_streams(120);
  for (const core::expr_ptr& expr : riotbench_exprs()) {
    core::raw_filter reference(expr);
    for (const std::string& stream : streams) {
      const std::vector<bool> expected = reference.filter_stream(stream);
      for (const core::simd::simd_level level :
           core::simd::available_levels()) {
        core::query_set set;
        set.add(expr);
        core::filter_options options;
        options.simd = level;
        for (const core::engine_kind kind :
             {core::engine_kind::scalar, core::engine_kind::chunked}) {
          auto engine = set.make_engine(kind, options);
          EXPECT_EQ(engine->query_count(), 1u);
          EXPECT_EQ(engine->filter_stream(stream), expected)
              << core::to_string(kind)
              << " simd=" << core::simd::to_string(level);
          // Single-query engines never pay for bitmap words.
          EXPECT_TRUE(engine->decision_words().empty());
        }
      }
    }
  }
}

TEST(QuerySet, MemberColumnsMatchStandaloneRuns) {
  // The full fleet gate: every member's decision column equals running
  // that query alone, for every dataset and SIMD tier, on the chunked AND
  // the scalar multi-query engine.
  const auto exprs = riotbench_exprs();
  core::query_set set;
  for (const core::expr_ptr& expr : exprs) set.add(expr);

  for (const std::string& stream : evaluation_streams(120)) {
    std::vector<std::vector<bool>> expected;
    for (const core::expr_ptr& expr : exprs)
      expected.push_back(core::raw_filter(expr).filter_stream(stream));

    for (const core::simd::simd_level level :
         core::simd::available_levels()) {
      core::filter_options options;
      options.simd = level;
      for (const core::engine_kind kind :
           {core::engine_kind::scalar, core::engine_kind::chunked}) {
        auto engine = set.make_engine(kind, options);
        const std::vector<bool> any = engine->filter_stream(stream);
        ASSERT_EQ(any.size(), expected[0].size());
        for (std::size_t q = 0; q < exprs.size(); ++q)
          EXPECT_EQ(engine->decision_column(q), expected[q])
              << core::to_string(kind) << " query " << q
              << " simd=" << core::simd::to_string(level);
        // The any-match verdict is the OR of the columns.
        for (std::size_t r = 0; r < any.size(); ++r) {
          bool expect_any = false;
          for (const auto& column : expected) expect_any |= column[r];
          ASSERT_EQ(any[r], expect_any) << "record " << r;
        }
      }
    }
  }
}

TEST(QuerySet, ChunkBoundariesDoNotDriftMultiQueryColumns) {
  // Records straddling scan_chunk boundaries in every alignment around the
  // 64-byte bitmap block must not move a single bit of any column.
  const auto exprs = riotbench_exprs();
  core::query_set set;
  for (const core::expr_ptr& expr : exprs) set.add(expr);
  const std::string stream = data::smartcity_generator().stream(120);

  auto whole = set.make_engine(core::engine_kind::chunked);
  whole->scan_chunk(std::string_view(stream));
  whole->finish();

  for (const std::size_t width : {std::size_t{1}, std::size_t{63},
                                  std::size_t{64}, std::size_t{65},
                                  std::size_t{257}}) {
    auto engine = set.make_engine(core::engine_kind::chunked);
    for (std::size_t off = 0; off < stream.size(); off += width)
      engine->scan_chunk(std::string_view(stream).substr(off, width));
    engine->finish();
    ASSERT_EQ(engine->decisions(), whole->decisions())
        << "width " << width;
    ASSERT_EQ(engine->decision_words(), whole->decision_words())
        << "width " << width;
  }
}

TEST(QuerySet, WideSetsCrossTheWordBoundary) {
  // 70 queries > 64 bits: two bitmap words per record, columns above bit
  // 63 land in word 1. Pool-based queries keep the engine count small.
  core::query_set set;
  const std::vector<std::string> needles{"temperature", "humidity", "light",
                                         "dust", "battery"};
  std::vector<core::expr_ptr> members;
  for (const std::string& needle : needles)
    for (int block = 1; block <= 2; ++block)
      members.push_back(core::string_leaf(needle, block));
  for (std::size_t i = 0; i < 70; ++i)
    set.add(core::conj({members[i % members.size()],
                        members[(i * 3 + 1) % members.size()]}));

  auto engine = set.make_engine(core::engine_kind::chunked);
  EXPECT_EQ(engine->words_per_record(), 2u);
  const std::string stream = data::smartcity_generator().stream(150);
  const std::vector<bool> any = engine->filter_stream(stream);
  ASSERT_EQ(engine->decision_words().size(), 2u * any.size());

  for (const std::size_t q : {std::size_t{0}, std::size_t{63},
                              std::size_t{64}, std::size_t{69}}) {
    core::raw_filter alone(set.queries()[q]);
    EXPECT_EQ(engine->decision_column(q), alone.filter_stream(stream))
        << "query " << q;
  }
}

}  // namespace
}  // namespace jrf
