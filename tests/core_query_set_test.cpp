// The multi-tenant query_set (PR 8 tentpole): registry semantics (stable
// monotone ids, dense order, revision bumps), spec_key interning (K
// duplicate queries share ONE engine pool and fan out through
// engine_subscribers), and the acceptance gate - every member's decision
// column byte-identical to running that query alone, across the riotbench
// queries, all three datasets, and every SIMD tier this host executes
// (the forced-scalar CI leg runs the same sweep with one available level).
//
// PR 10 adds the conjunct-prefix plan trie: the sweeps below hold trie
// evaluation byte-identical to the flat per-query plan (the multi-query
// scalar engine - N independent raw_filters - is the flat reference) on
// shared-prefix pools, disjoint pools, 70+-query multi-word bitmaps, and
// records where zero engines fire (the short-circuit path).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/filter_engine.hpp"
#include "core/query_set.hpp"
#include "core/raw_filter.hpp"
#include "core/simd.hpp"
#include "data/smartcity.hpp"
#include "data/stream.hpp"
#include "data/taxi.hpp"
#include "data/twitter.hpp"
#include "query/compile.hpp"
#include "query/riotbench.hpp"
#include "util/error.hpp"

namespace jrf {
namespace {

std::vector<std::string> evaluation_streams(int records) {
  return {
      data::smartcity_generator().stream(records),
      data::taxi_generator().stream(records),
      data::twitter_generator().stream(records),
  };
}

std::vector<core::expr_ptr> riotbench_exprs() {
  return {query::compile_default(query::riotbench::qs0()),
          query::compile_default(query::riotbench::qs1()),
          query::compile_default(query::riotbench::qt()),
          query::compile_default(query::riotbench::q0())};
}

TEST(QuerySet, StableMonotoneIdsAndDenseOrder) {
  core::query_set set;
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.revision(), 0u);

  const auto exprs = riotbench_exprs();
  const core::query_id a = set.add(exprs[0]);
  const core::query_id b = set.add(exprs[1]);
  const core::query_id c = set.add(exprs[2]);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(set.size(), 3u);
  EXPECT_EQ(set.revision(), 3u);
  EXPECT_EQ(set.ids(), (std::vector<core::query_id>{a, b, c}));
  EXPECT_EQ(set.ordinal(b), 1u);
  EXPECT_EQ(set.query(b), exprs[1]);

  // Removal shifts later queries down one dense slot; the id never comes
  // back even after the slot frees up.
  EXPECT_TRUE(set.remove(b));
  EXPECT_FALSE(set.remove(b));
  EXPECT_FALSE(set.contains(b));
  EXPECT_EQ(set.ids(), (std::vector<core::query_id>{a, c}));
  EXPECT_EQ(set.ordinal(c), 1u);
  const core::query_id d = set.add(exprs[3]);
  EXPECT_GT(d, c);
  EXPECT_EQ(set.revision(), 5u);

  EXPECT_THROW((void)set.ordinal(b), jrf::error);
  EXPECT_THROW((void)set.query(b), jrf::error);
  EXPECT_THROW(set.add(nullptr), jrf::error);
}

TEST(QuerySet, EmptySetCannotCompile) {
  core::query_set set;
  EXPECT_THROW((void)set.compile(), jrf::error);
  EXPECT_THROW((void)set.make_engine(core::engine_kind::chunked), jrf::error);
}

TEST(QuerySet, DuplicateQueriesInternToOneEnginePool) {
  // K copies of the same query must compile to exactly the engine pool of
  // ONE copy, with every copy subscribed to every engine it references.
  const core::expr_ptr expr = query::compile_default(query::riotbench::qs0());
  const core::compiled_layout one = core::compiled_layout::compile(*expr);

  constexpr std::size_t kCopies = 7;
  core::query_set set;
  for (std::size_t i = 0; i < kCopies; ++i) set.add(expr);

  const core::compiled_layout shared = set.compile();
  EXPECT_EQ(shared.query_count(), kCopies);
  EXPECT_EQ(shared.engines.size(), one.engines.size());
  EXPECT_EQ(shared.engine_keys.size(), one.engines.size());
  EXPECT_EQ(shared.groups.size(), one.groups.size());
  for (const auto& subscribers : shared.engine_subscribers) {
    ASSERT_EQ(subscribers.size(), kCopies);
    for (std::size_t i = 0; i < kCopies; ++i) EXPECT_EQ(subscribers[i], i);
  }

  // And the K decision columns are identical to each other and to the
  // standalone run.
  const std::string stream = data::smartcity_generator().stream(200);
  core::raw_filter reference(expr);
  const std::vector<bool> expected = reference.filter_stream(stream);
  auto engine = set.make_engine(core::engine_kind::chunked);
  engine->filter_stream(stream);
  for (std::size_t q = 0; q < kCopies; ++q)
    EXPECT_EQ(engine->decision_column(q), expected) << "copy " << q;
}

TEST(QuerySet, DisjointQueriesKeepDisjointSubscriptions) {
  core::query_set set;
  set.add(core::string_leaf("temperature", 2));
  set.add(core::string_leaf("humidity", 2));
  const core::compiled_layout layout = set.compile();
  ASSERT_EQ(layout.engines.size(), 2u);
  EXPECT_EQ(layout.engine_subscribers[0],
            (std::vector<std::size_t>{0}));
  EXPECT_EQ(layout.engine_subscribers[1],
            (std::vector<std::size_t>{1}));

  // A third query referencing BOTH specs adds no engine - full interning.
  set.add(core::conj({core::string_leaf("temperature", 2),
                      core::string_leaf("humidity", 2)}));
  const core::compiled_layout merged = set.compile();
  EXPECT_EQ(merged.engines.size(), 2u);
  EXPECT_EQ(merged.engine_subscribers[0],
            (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(merged.engine_subscribers[1],
            (std::vector<std::size_t>{1, 2}));
}

TEST(QuerySet, SingleQueryByteIdenticalToStandaloneEverywhere) {
  // The N=1 acceptance gate: a one-query set IS the pre-multi-tenant
  // engine, byte for byte, across riotbench x datasets x SIMD tiers and
  // both engine kinds.
  const auto streams = evaluation_streams(120);
  for (const core::expr_ptr& expr : riotbench_exprs()) {
    core::raw_filter reference(expr);
    for (const std::string& stream : streams) {
      const std::vector<bool> expected = reference.filter_stream(stream);
      for (const core::simd::simd_level level :
           core::simd::available_levels()) {
        core::query_set set;
        set.add(expr);
        core::filter_options options;
        options.simd = level;
        for (const core::engine_kind kind :
             {core::engine_kind::scalar, core::engine_kind::chunked}) {
          auto engine = set.make_engine(kind, options);
          EXPECT_EQ(engine->query_count(), 1u);
          EXPECT_EQ(engine->filter_stream(stream), expected)
              << core::to_string(kind)
              << " simd=" << core::simd::to_string(level);
          // Single-query engines never pay for bitmap words.
          EXPECT_TRUE(engine->decision_words().empty());
        }
      }
    }
  }
}

TEST(QuerySet, MemberColumnsMatchStandaloneRuns) {
  // The full fleet gate: every member's decision column equals running
  // that query alone, for every dataset and SIMD tier, on the chunked AND
  // the scalar multi-query engine.
  const auto exprs = riotbench_exprs();
  core::query_set set;
  for (const core::expr_ptr& expr : exprs) set.add(expr);

  for (const std::string& stream : evaluation_streams(120)) {
    std::vector<std::vector<bool>> expected;
    for (const core::expr_ptr& expr : exprs)
      expected.push_back(core::raw_filter(expr).filter_stream(stream));

    for (const core::simd::simd_level level :
         core::simd::available_levels()) {
      core::filter_options options;
      options.simd = level;
      for (const core::engine_kind kind :
           {core::engine_kind::scalar, core::engine_kind::chunked}) {
        auto engine = set.make_engine(kind, options);
        const std::vector<bool> any = engine->filter_stream(stream);
        ASSERT_EQ(any.size(), expected[0].size());
        for (std::size_t q = 0; q < exprs.size(); ++q)
          EXPECT_EQ(engine->decision_column(q), expected[q])
              << core::to_string(kind) << " query " << q
              << " simd=" << core::simd::to_string(level);
        // The any-match verdict is the OR of the columns.
        for (std::size_t r = 0; r < any.size(); ++r) {
          bool expect_any = false;
          for (const auto& column : expected) expect_any |= column[r];
          ASSERT_EQ(any[r], expect_any) << "record " << r;
        }
      }
    }
  }
}

TEST(QuerySet, ChunkBoundariesDoNotDriftMultiQueryColumns) {
  // Records straddling scan_chunk boundaries in every alignment around the
  // 64-byte bitmap block must not move a single bit of any column.
  const auto exprs = riotbench_exprs();
  core::query_set set;
  for (const core::expr_ptr& expr : exprs) set.add(expr);
  const std::string stream = data::smartcity_generator().stream(120);

  auto whole = set.make_engine(core::engine_kind::chunked);
  whole->scan_chunk(std::string_view(stream));
  whole->finish();

  for (const std::size_t width : {std::size_t{1}, std::size_t{63},
                                  std::size_t{64}, std::size_t{65},
                                  std::size_t{257}}) {
    auto engine = set.make_engine(core::engine_kind::chunked);
    for (std::size_t off = 0; off < stream.size(); off += width)
      engine->scan_chunk(std::string_view(stream).substr(off, width));
    engine->finish();
    ASSERT_EQ(engine->decisions(), whole->decisions())
        << "width " << width;
    ASSERT_EQ(engine->decision_words(), whole->decision_words())
        << "width " << width;
  }
}

TEST(QuerySet, WideSetsCrossTheWordBoundary) {
  // 70 queries > 64 bits: two bitmap words per record, columns above bit
  // 63 land in word 1. Pool-based queries keep the engine count small.
  core::query_set set;
  const std::vector<std::string> needles{"temperature", "humidity", "light",
                                         "dust", "battery"};
  std::vector<core::expr_ptr> members;
  for (const std::string& needle : needles)
    for (int block = 1; block <= 2; ++block)
      members.push_back(core::string_leaf(needle, block));
  for (std::size_t i = 0; i < 70; ++i)
    set.add(core::conj({members[i % members.size()],
                        members[(i * 3 + 1) % members.size()]}));

  auto engine = set.make_engine(core::engine_kind::chunked);
  EXPECT_EQ(engine->words_per_record(), 2u);
  const std::string stream = data::smartcity_generator().stream(150);
  const std::vector<bool> any = engine->filter_stream(stream);
  ASSERT_EQ(engine->decision_words().size(), 2u * any.size());

  for (const std::size_t q : {std::size_t{0}, std::size_t{63},
                              std::size_t{64}, std::size_t{69}}) {
    core::raw_filter alone(set.queries()[q]);
    EXPECT_EQ(engine->decision_column(q), alone.filter_stream(stream))
        << "query " << q;
  }
}

TEST(QuerySet, TrieSharesConjunctPrefixes) {
  // Three queries over leaves A/B/C: {A&B, A&C, A}. The shared conjunct A
  // must compile to ONE trie root with the two discriminating conjuncts as
  // children - A evaluates once per record and fans out to three verdicts.
  const core::expr_ptr a = core::string_leaf("temperature", 2);
  const core::expr_ptr b = core::string_leaf("humidity", 2);
  const core::expr_ptr c = core::string_leaf("light", 2);
  core::query_set set;
  set.add(core::conj({a, b}));
  set.add(core::conj({a, c}));
  set.add(a);
  const core::compiled_layout layout = set.compile();
  ASSERT_EQ(layout.trie_roots.size(), 1u);
  ASSERT_EQ(layout.trie.size(), 3u);
  const core::compiled_layout::trie_node& root =
      layout.trie[layout.trie_roots[0]];
  EXPECT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.terminals, (std::vector<std::uint32_t>{2}));
  // A pure conjunct (leaves/ANDs only): the required-engine mask IS its
  // truth, so the walk never calls eval() for it.
  EXPECT_TRUE(root.pure);
  ASSERT_EQ(root.required.size(), 1u);
  EXPECT_NE(root.required[0], 0u);

  // A single-query compile carries no trie - N=1 stays on the untouched
  // single-query path by construction.
  core::query_set one;
  one.add(a);
  EXPECT_TRUE(one.compile().trie.empty());
}

TEST(QuerySet, TrieMatchesFlatPlanOnRiotbenchSweep) {
  // Trie-vs-flat equivalence over a shared-prefix fleet built from the
  // riotbench queries: every pairwise conjunction plus the bare queries.
  // The flat references are the multi-query SCALAR engine (N independent
  // raw_filters, no trie, no interning) and each query run standalone -
  // across all three datasets and every SIMD tier this host executes.
  const auto exprs = riotbench_exprs();
  core::query_set set;
  for (const core::expr_ptr& e : exprs) set.add(e);
  for (std::size_t i = 0; i < exprs.size(); ++i)
    for (std::size_t j = i + 1; j < exprs.size(); ++j)
      set.add(core::conj({exprs[i], exprs[j]}));

  for (const std::string& stream : evaluation_streams(100)) {
    std::vector<std::vector<bool>> expected;
    for (const core::expr_ptr& q : set.queries())
      expected.push_back(core::raw_filter(q).filter_stream(stream));

    for (const core::simd::simd_level level :
         core::simd::available_levels()) {
      core::filter_options options;
      options.simd = level;
      auto flat = set.make_engine(core::engine_kind::scalar, options);
      auto trie = set.make_engine(core::engine_kind::chunked, options);
      const std::vector<bool> flat_any = flat->filter_stream(stream);
      const std::vector<bool> trie_any = trie->filter_stream(stream);
      ASSERT_EQ(trie_any, flat_any)
          << "simd=" << core::simd::to_string(level);
      ASSERT_EQ(trie->decision_words(), flat->decision_words())
          << "simd=" << core::simd::to_string(level);
      for (std::size_t q = 0; q < set.size(); ++q)
        ASSERT_EQ(trie->decision_column(q), expected[q])
            << "query " << q << " simd=" << core::simd::to_string(level);
    }
  }
}

TEST(QuerySet, TrieMatchesFlatPlanOnWideSharedPrefixPool) {
  // 72 queries (two bitmap words) drawn from a deliberately overlapping
  // pool: every query shares its first conjunct with many others, so deep
  // trie sharing is exercised together with word-1 verdict fan-out.
  const std::vector<std::string> needles{"temperature", "humidity", "light",
                                         "dust", "battery", "sound"};
  std::vector<core::expr_ptr> leaves;
  for (const std::string& needle : needles)
    for (int block = 1; block <= 2; ++block)
      leaves.push_back(core::string_leaf(needle, block));
  core::query_set set;
  for (std::size_t i = 0; i < 72; ++i)
    set.add(core::conj({leaves[i % 4],  // dense prefix overlap
                        leaves[(i * 5 + 1) % leaves.size()],
                        leaves[(i * 7 + 2) % leaves.size()]}));
  const core::compiled_layout layout = set.compile();
  // Sharing must actually happen: far fewer trie roots than queries (the
  // canonical conjunct sort decides WHICH conjunct leads a path, so the
  // root count tracks the distinct lead conjuncts, not the pool stride).
  EXPECT_LE(layout.trie_roots.size(), 8u);
  EXPECT_LT(layout.trie.size(), 3 * set.size());

  const std::string stream = data::smartcity_generator().stream(150);
  auto flat = set.make_engine(core::engine_kind::scalar);
  auto trie = set.make_engine(core::engine_kind::chunked);
  EXPECT_EQ(trie->words_per_record(), 2u);
  const std::vector<bool> flat_any = flat->filter_stream(stream);
  ASSERT_EQ(trie->filter_stream(stream), flat_any);
  ASSERT_EQ(trie->decision_words(), flat->decision_words());
  for (const std::size_t q : {std::size_t{0}, std::size_t{63},
                              std::size_t{64}, std::size_t{71}}) {
    core::raw_filter alone(set.queries()[q]);
    EXPECT_EQ(trie->decision_column(q), alone.filter_stream(stream))
        << "query " << q;
  }
}

TEST(QuerySet, TrieMatchesFlatPlanOnDisjointPool) {
  // The anti-sharing case: queries with pairwise-disjoint engine sets
  // degenerate to one trie root per query - the walk must still match the
  // flat plan bit for bit.
  const std::vector<std::string> needles{"temperature", "humidity", "light",
                                         "dust", "battery"};
  core::query_set set;
  for (const std::string& needle : needles)
    set.add(core::string_leaf(needle, 2));
  const core::compiled_layout layout = set.compile();
  EXPECT_EQ(layout.trie_roots.size(), set.size());

  for (const std::string& stream : evaluation_streams(100)) {
    auto flat = set.make_engine(core::engine_kind::scalar);
    auto trie = set.make_engine(core::engine_kind::chunked);
    ASSERT_EQ(trie->filter_stream(stream), flat->filter_stream(stream));
    ASSERT_EQ(trie->decision_words(), flat->decision_words());
  }
}

TEST(QuerySet, ShortCircuitWhenZeroEnginesFire) {
  // Records containing none of the fleet's needles light no bit of the
  // engine-fire bitmap, so the trie walk prunes every query at its root.
  // The records must still be decided (all-reject), interleaved cleanly
  // with accepting records, and byte-identical to the flat plan.
  core::query_set set;
  const core::expr_ptr t = core::string_leaf("temperature", 2);
  const core::expr_ptr h = core::string_leaf("humidity", 2);
  set.add(core::conj({t, h}));
  set.add(t);
  set.add(h);

  const std::string stream =
      "{\"x\":1}\n"                                  // zero engines fire
      "{\"temperature\":3,\"humidity\":4}\n"         // all three queries
      "{\"a\":{\"b\":[]}}\n"                         // zero engines fire
      "{\"humidity\":9}\n"                           // query 2 only
      "{\"y\":\"temperature says nothing\"}\n";      // substring still fires

  auto flat = set.make_engine(core::engine_kind::scalar);
  auto trie = set.make_engine(core::engine_kind::chunked);
  const std::vector<bool> flat_any = flat->filter_stream(stream);
  const std::vector<bool> trie_any = trie->filter_stream(stream);
  ASSERT_EQ(trie_any, flat_any);
  ASSERT_EQ(trie->decision_words(), flat->decision_words());
  EXPECT_FALSE(trie_any[0]);
  EXPECT_TRUE(trie_any[1]);
  EXPECT_FALSE(trie_any[2]);
  EXPECT_TRUE(trie_any[3]);

  // The standalone-probe path takes the same short circuit.
  std::uint64_t words = ~std::uint64_t{0};
  EXPECT_FALSE(trie->accepts_bits("{\"x\":1}", &words));
  EXPECT_EQ(words, 0u);
  EXPECT_TRUE(trie->accepts_bits("{\"temperature\":0,\"humidity\":0}",
                                 &words));
  EXPECT_EQ(words, 7u);
}

}  // namespace
}  // namespace jrf
