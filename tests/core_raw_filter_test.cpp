// Tests for composed raw filters: composition tree, structural groups,
// record framing (paper Sections III-C, III-D and the Listing 1/2 running
// example).
#include "core/raw_filter.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/expr.hpp"
#include "numrange/range_spec.hpp"
#include "util/error.hpp"

namespace jrf::core {
namespace {

// Paper Listing 1 (SmartCity SenML record, abridged to the shown fields).
const std::string kListing1 =
    R"({"e":[)"
    R"({"v":"35.2","u":"far","n":"temperature"},)"
    R"({"v":"12","u":"per","n":"humidity"},)"
    R"({"v":"713","u":"per","n":"light"},)"
    R"({"v":"305.01","u":"per","n":"dust"},)"
    R"({"v":"20","u":"per","n":"airquality_raw"})"
    R"(],"bt":1422748800000})";

primitive_spec s1_temperature() {
  return string_spec{string_technique::substring, 1, "temperature"};
}

primitive_spec v_07_351() {
  return value_spec{numrange::range_spec::real_range("0.7", "35.1"), {}};
}

TEST(FilterExpr, NotationMatchesPaper) {
  const expr_ptr e = conj(
      {make_group(group_kind::scope, {s1_temperature(), v_07_351()}),
       value_leaf(numrange::range_spec::integer_range("12", "49"))});
  EXPECT_EQ(e->to_string(),
            "{ s1(\"temperature\") & v(0.7 <= f <= 35.1) } & v(12 <= i <= 49)");
}

TEST(FilterExpr, SingleChildCollapses) {
  const expr_ptr l = string_leaf("light", 1);
  EXPECT_EQ(conj({l}), l);
  EXPECT_EQ(disj({l}), l);
}

TEST(FilterExpr, PrimitiveCountWalksGroups) {
  const expr_ptr e = conj(
      {make_group(group_kind::scope, {s1_temperature(), v_07_351()}),
       string_leaf("humidity", 2)});
  EXPECT_EQ(e->primitive_count(), 3);
}

TEST(FilterExpr, EmptyCompositionThrows) {
  EXPECT_THROW(conj({}), error);
  EXPECT_THROW(disj({}), error);
  EXPECT_THROW(make_group(group_kind::scope, {}), error);
}

// ------------------------------------------------- the paper's running example

TEST(RawFilter, FlatAndProducesTheIntroFalsePositive) {
  // Section I: the record contains "temperature" and numbers (12, 20) in
  // [0.7, 35.1], but the temperature value itself is 35.2 - a flat AND
  // accepts (false positive).
  raw_filter flat(conj({leaf(s1_temperature()), leaf(v_07_351())}));
  EXPECT_TRUE(flat.accepts(kListing1));
}

TEST(RawFilter, StructuralGroupRemovesTheIntroFalsePositive) {
  // Section III-C: requiring both primitives to fire in the same
  // measurement object rejects the record.
  raw_filter grouped(make_group(group_kind::scope,
                                {s1_temperature(), v_07_351()}));
  EXPECT_FALSE(grouped.accepts(kListing1));
}

TEST(RawFilter, StructuralGroupAcceptsTrueMatch) {
  const std::string match =
      R"({"e":[{"v":"21.5","u":"far","n":"temperature"}],"bt":1})";
  raw_filter grouped(make_group(group_kind::scope,
                                {s1_temperature(), v_07_351()}));
  EXPECT_TRUE(grouped.accepts(match));
}

TEST(RawFilter, GroupNoFalseNegativeWhenValueEndsAtObjectClose) {
  // The value token ends exactly at the measurement's closing brace; the
  // group must still credit it to that scope (unquoted SenML variant).
  const std::string match = R"({"e":[{"n":"temperature","v":21.5}],"bt":1})";
  raw_filter grouped(make_group(group_kind::scope,
                                {s1_temperature(), v_07_351()}));
  EXPECT_TRUE(grouped.accepts(match));
}

// ----------------------------------------------------------- group semantics

TEST(RawFilter, ScopeGroupSeparatesSiblingObjects) {
  // "temperature" in object 1, in-range value only in object 2.
  const std::string record =
      R"({"e":[{"n":"temperature","v":"99"},{"n":"humidity","v":"12"}]})";
  raw_filter grouped(make_group(group_kind::scope,
                                {s1_temperature(), v_07_351()}));
  EXPECT_FALSE(grouped.accepts(record));
}

TEST(RawFilter, ScopeGroupAllowsNestedSubObjects) {
  // A nested object between the two member fires must not clear the
  // latches of the enclosing measurement scope.
  const std::string record =
      R"({"e":[{"n":"temperature","meta":{"q":1422},"v":"21.5"}]})";
  raw_filter grouped(make_group(group_kind::scope,
                                {s1_temperature(), v_07_351()}));
  EXPECT_TRUE(grouped.accepts(record));
}

TEST(RawFilter, PairGroupRequiresSamePair) {
  const primitive_spec key = string_spec{string_technique::substring, 2, "fare_amount"};
  const primitive_spec val =
      value_spec{numrange::range_spec::real_range("6.00", "201.00"), {}};
  raw_filter pair(make_group(group_kind::pair, {key, val}));
  // Key and value in the same pair.
  EXPECT_TRUE(pair.accepts(R"({"fare_amount":12.5,"tip_amount":900})"));
  // Value in range belongs to a different pair.
  EXPECT_FALSE(pair.accepts(R"({"fare_amount":999,"tip_amount":12.5})"));
}

TEST(RawFilter, PairGroupValueAtClosingBrace) {
  const primitive_spec key = string_spec{string_technique::substring, 2, "fare_amount"};
  const primitive_spec val =
      value_spec{numrange::range_spec::real_range("6.00", "201.00"), {}};
  raw_filter pair(make_group(group_kind::pair, {key, val}));
  EXPECT_TRUE(pair.accepts(R"({"fare_amount":12.5})"));
}

TEST(RawFilter, SingleMemberGroupActsAsLeaf) {
  raw_filter grouped(make_group(group_kind::scope, {s1_temperature()}));
  raw_filter bare(leaf(s1_temperature()));
  for (const std::string& record :
       {kListing1, std::string(R"({"n":"humidity"})"), std::string("{}")}) {
    EXPECT_EQ(grouped.accepts(record), bare.accepts(record)) << record;
  }
}

// --------------------------------------------------------------- composition

TEST(RawFilter, DisjunctionNeverDropsBelowMembers) {
  raw_filter either(disj({string_leaf("light", 1), string_leaf("dust", 1)}));
  EXPECT_TRUE(either.accepts(R"({"n":"light"})"));
  EXPECT_TRUE(either.accepts(R"({"n":"dust"})"));
  EXPECT_FALSE(either.accepts(R"({"n":"humidity"})"));
}

TEST(RawFilter, ConjunctionOverRecordLatches) {
  raw_filter both(conj({string_leaf("light", 1), string_leaf("dust", 1)}));
  EXPECT_TRUE(both.accepts(R"({"a":"light","b":"dust"})"));
  EXPECT_FALSE(both.accepts(R"({"a":"light"})"));
}

TEST(RawFilter, NestedAndOrTree) {
  // (light | dust) & humidity
  raw_filter f(conj({disj({string_leaf("light", 1), string_leaf("dust", 1)}),
                     string_leaf("humidity", 1)}));
  EXPECT_TRUE(f.accepts(R"({"a":"dust","b":"humidity"})"));
  EXPECT_FALSE(f.accepts(R"({"a":"dust"})"));
  EXPECT_FALSE(f.accepts(R"({"b":"humidity"})"));
}

// ------------------------------------------------------------ record framing

TEST(RawFilter, StreamDecisionsPerRecord) {
  raw_filter f(string_leaf("light", 1));
  const std::string stream =
      R"({"n":"light"})" "\n" R"({"n":"dust"})" "\n" R"({"n":"light"})" "\n";
  const auto decisions = f.filter_stream(stream);
  ASSERT_EQ(decisions.size(), 3u);
  EXPECT_TRUE(decisions[0]);
  EXPECT_FALSE(decisions[1]);
  EXPECT_TRUE(decisions[2]);
}

TEST(RawFilter, TrailingRecordWithoutNewlineIsFlushed) {
  raw_filter f(string_leaf("light", 1));
  const auto decisions = f.filter_stream(R"({"n":"light"})");
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_TRUE(decisions[0]);
}

TEST(RawFilter, NoStateLeaksAcrossRecords) {
  // "temperature" split across two records must not fire.
  raw_filter f(string_leaf("temperature", 11));
  const auto decisions = f.filter_stream("temper\nature\n");
  ASSERT_EQ(decisions.size(), 2u);
  EXPECT_FALSE(decisions[0]);
  EXPECT_FALSE(decisions[1]);
}

TEST(RawFilter, MatchEndingExactlyAtSeparator) {
  // A numeric token terminated by the record separator still counts for
  // the record it belongs to.
  raw_filter f(value_leaf(numrange::range_spec::integer_range("12", "49")));
  const auto decisions = f.filter_stream("12\n50\n");
  ASSERT_EQ(decisions.size(), 2u);
  EXPECT_TRUE(decisions[0]);
  EXPECT_FALSE(decisions[1]);
}

TEST(RawFilter, EmptyLinesAreNotRecords) {
  raw_filter f(string_leaf("light", 1));
  const auto decisions = f.filter_stream("\n\n{\"n\":\"light\"}\n\n");
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_TRUE(decisions[0]);
}

TEST(RawFilter, NullExpressionThrows) {
  EXPECT_THROW(raw_filter(nullptr), error);
}

// --------------------------------------------------------- FPR bookkeeping

TEST(FalsePositiveRate, CountsOverNegatives) {
  // decisions: accept,accept,accept,reject; labels: pos,neg,neg,neg
  const std::vector<bool> decisions{true, true, true, false};
  const std::vector<bool> labels{true, false, false, false};
  EXPECT_DOUBLE_EQ(false_positive_rate(decisions, labels), 2.0 / 3.0);
}

TEST(FalsePositiveRate, NoNegativesYieldsZero) {
  EXPECT_DOUBLE_EQ(false_positive_rate({true}, {true}), 0.0);
}

TEST(FalsePositiveRate, SizeMismatchThrows) {
  EXPECT_THROW(false_positive_rate({true}, {true, false}), error);
}

}  // namespace
}  // namespace jrf::core
