// RTL <-> behavioural equivalence: the elaborated netlist, executed cycle
// by cycle on the RTL simulator, must produce byte-identical record
// decisions to core::raw_filter for every primitive and composition form.
// This is the load-bearing check behind the "cycle-accurate software model"
// substitution documented in DESIGN.md.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/elaborate.hpp"
#include "core/expr.hpp"
#include "core/raw_filter.hpp"
#include "numrange/range_spec.hpp"
#include "rtl/simulator.hpp"
#include "util/prng.hpp"

namespace jrf::core {
namespace {

struct named_expr {
  std::string name;
  expr_ptr expr;
};

primitive_spec s_of(std::string text, int block) {
  return string_spec{string_technique::substring, block, std::move(text)};
}

primitive_spec v_int(std::string_view lo, std::string_view hi) {
  return value_spec{numrange::range_spec::integer_range(lo, hi), {}};
}

primitive_spec v_real(std::string_view lo, std::string_view hi) {
  return value_spec{numrange::range_spec::real_range(lo, hi), {}};
}

std::vector<named_expr> fixtures() {
  return {
      {"s1", leaf(s_of("temperature", 1))},
      {"s2", leaf(s_of("temperature", 2))},
      {"sN", leaf(s_of("light", 5))},
      {"dfa", dfa_string_leaf("dust")},
      {"v_int", leaf(v_int("12", "49"))},
      {"v_real", leaf(v_real("0.7", "35.1"))},
      {"v_neg", leaf(v_real("-12.5", "43.1"))},
      {"flat_and", conj({leaf(s_of("temperature", 1)), leaf(v_real("0.7", "35.1"))})},
      {"scope_group",
       make_group(group_kind::scope, {s_of("temperature", 1), v_real("0.7", "35.1")})},
      {"pair_group",
       make_group(group_kind::pair, {s_of("fare_amount", 2), v_real("6.00", "201.00")})},
      {"or_tree", disj({leaf(s_of("light", 1)), leaf(s_of("dust", 1))})},
      {"paper_qs0_small",
       conj({make_group(group_kind::scope,
                        {s_of("humidity", 1), v_real("20.3", "69.1")}),
             make_group(group_kind::scope,
                        {s_of("airquality_raw", 1), v_int("12", "49")})})},
  };
}

std::vector<std::string> streams() {
  std::vector<std::string> out;
  out.push_back(
      R"({"e":[{"v":"35.2","u":"far","n":"temperature"},)"
      R"({"v":"12","u":"per","n":"humidity"},)"
      R"({"v":"713","u":"per","n":"light"},)"
      R"({"v":"305.01","u":"per","n":"dust"},)"
      R"({"v":"20","u":"per","n":"airquality_raw"})"
      R"(],"bt":1422748800000})" "\n"
      R"({"e":[{"v":"21.5","u":"far","n":"temperature"},)"
      R"({"v":"42","u":"per","n":"humidity"}]})" "\n");
  out.push_back(R"({"fare_amount":12.5,"tolls_amount":2.5})" "\n"
                R"({"fare_amount":900.0,"tip_amount":"12"})" "\n");
  // Adversarial: brackets/commas/quotes inside strings, escapes, numbers at
  // record end, empty records, deep nesting.
  out.push_back(R"({"k":"}{][,","e":"a\"b","n":"temperature','"})" "\n"
                "12\n"
                "{}\n"
                R"([[[[{"v":35.1}]]]])" "\n");
  // Cross-record window adversary: a record ending in a needle prefix
  // followed by one completing it; the shift window must not leak.
  out.push_back("xxtempera\nture12\ntemperature\nfare_amou\nnt6.5\n");
  // Random byte soup over a JSON-ish alphabet (deterministic).
  util::prng rng(0xDA7E2022);
  const std::string alphabet =
      "{}[]\",:.0123456789-+eE\\ abcdefghijklmnopqrstuvwxyz_";
  std::string soup;
  for (int rec = 0; rec < 24; ++rec) {
    const std::size_t len = rng.below(120);
    soup += rng.ascii(len, alphabet);
    soup += '\n';
  }
  out.push_back(std::move(soup));
  return out;
}

class RtlEquivalence : public ::testing::TestWithParam<named_expr> {};

TEST_P(RtlEquivalence, DecisionsIdenticalPerByte) {
  const expr_ptr expr = GetParam().expr;
  const filter_options options;

  netlist::network net;
  const filter_circuit circuit = elaborate_filter(net, expr, options);
  rtl::simulator sim(net);
  raw_filter sw(expr, options);

  for (const std::string& stream : streams()) {
    sim.reset();
    sw.reset();
    for (std::size_t i = 0; i < stream.size(); ++i) {
      const auto byte = static_cast<unsigned char>(stream[i]);
      sim.set_bus(circuit.byte, byte);
      sim.settle();
      const bool hw_boundary = sim.value(circuit.record_boundary);
      const bool hw_accept = sim.value(circuit.accept);
      const auto sw_step = sw.push(byte);
      ASSERT_EQ(hw_boundary, sw_step.record_boundary)
          << GetParam().name << " boundary mismatch at byte " << i;
      if (hw_boundary) {
        ASSERT_EQ(hw_accept, sw_step.accept)
            << GetParam().name << " accept mismatch at byte " << i;
      }
      sim.step();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Filters, RtlEquivalence,
                         ::testing::ValuesIn(fixtures()),
                         [](const auto& info) { return info.param.name; });

TEST(RtlEquivalenceDetail, SeparatorInsideStringDoesNotSplit) {
  // A raw newline inside a string literal is invalid JSON, but both sides
  // must still agree: the masked separator is not a record boundary.
  const expr_ptr expr = leaf(s_of("ab", 1));
  netlist::network net;
  const filter_circuit circuit = elaborate_filter(net, expr);
  rtl::simulator sim(net);
  raw_filter sw(expr);

  const std::string stream = "{\"k\":\"x\ny\"}\nab\n";
  int hw_boundaries = 0;
  int sw_boundaries = 0;
  for (const char c : stream) {
    const auto byte = static_cast<unsigned char>(c);
    sim.set_bus(circuit.byte, byte);
    sim.settle();
    hw_boundaries += sim.value(circuit.record_boundary) ? 1 : 0;
    sw_boundaries += sw.push(byte).record_boundary ? 1 : 0;
    sim.step();
  }
  EXPECT_EQ(hw_boundaries, sw_boundaries);
  EXPECT_EQ(hw_boundaries, 2);  // the masked '\n' is swallowed
}

}  // namespace
}  // namespace jrf::core
