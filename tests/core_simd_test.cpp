// core/simd portability layer: every vector tier must return positions and
// masks byte-identical to the scalar reference tier, for buffers that
// exercise the vector-width boundaries (15/16/17 and 31/32/33 bytes, and
// matches straddling a 16- or 32-byte chunk edge). Also holds the runtime
// dispatch contract: the CPUID probe, the JRF_FORCE_SCALAR / JRF_SIMD_LEVEL
// overrides (exercised via resolve()), and the CI probe gate - when
// JRF_REQUIRE_SIMD names a level, detecting less is a failure, so a
// misconfigured runner cannot silently fall back to scalar.
#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "core/simd.hpp"
#include "numrange/builder.hpp"

namespace jrf::core::simd {
namespace {

int rank(simd_level level) { return static_cast<int>(level); }

std::vector<std::size_t> boundary_sizes() {
  return {0, 1, 2, 7, 15, 16, 17, 31, 32, 33, 47, 63, 64, 65, 200, 255};
}

std::vector<unsigned char> random_bytes(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> dist(0, 255);
  std::vector<unsigned char> out(n);
  for (auto& b : out) b = static_cast<unsigned char>(dist(rng));
  return out;
}

// References: the token class delegates to its single definition
// (numrange::is_token_byte) so the vector tiers are pinned to the byte
// class the value engine actually samples with; the structural class is
// restated from the structure_tracker spec.
bool ref_token(unsigned char b) { return numrange::is_token_byte(b); }

bool ref_structural_or_escape(unsigned char b) {
  return b == '"' || b == '{' || b == '}' || b == '[' || b == ']' ||
         b == ',' || b == '\\';
}

TEST(SimdDispatch, DetectedLevelIsConcreteAndOrdered) {
  const simd_level detected = detected_level();
  EXPECT_NE(detected, simd_level::automatic);
  EXPECT_GE(rank(detected), rank(simd_level::scalar));
  const auto levels = available_levels();
  ASSERT_FALSE(levels.empty());
  EXPECT_EQ(levels.front(), simd_level::scalar);
  EXPECT_EQ(levels.back(), detected);
  for (std::size_t i = 1; i < levels.size(); ++i)
    EXPECT_GT(rank(levels[i]), rank(levels[i - 1]));
}

TEST(SimdDispatch, ResolveClampsToDetected) {
  EXPECT_EQ(resolve(simd_level::automatic), active_level());
  EXPECT_EQ(resolve(simd_level::scalar), simd_level::scalar);
  EXPECT_LE(rank(resolve(simd_level::avx2)), rank(detected_level()));
  for (const simd_level level : available_levels())
    EXPECT_EQ(resolve(level), level);
}

TEST(SimdDispatch, ParseAndPrintRoundTrip) {
  for (const simd_level level :
       {simd_level::automatic, simd_level::scalar, simd_level::sse2,
        simd_level::avx2, simd_level::avx512}) {
    const auto parsed = parse_level(to_string(level));
    ASSERT_TRUE(parsed.has_value()) << to_string(level);
    EXPECT_EQ(*parsed, level);
  }
  EXPECT_FALSE(parse_level("altivec").has_value());
  EXPECT_FALSE(parse_level("").has_value());
}

// CI probe gate: an AVX2 runner exports JRF_REQUIRE_SIMD=avx2; if the
// probe silently downgrades (a build or detection regression), this test
// fails instead of the whole matrix quietly testing scalar twice.
TEST(SimdDispatch, RequiredLevelIsDetected) {
  const char* required = std::getenv("JRF_REQUIRE_SIMD");
  if (required == nullptr || *required == '\0')
    GTEST_SKIP() << "JRF_REQUIRE_SIMD not set";
  const auto level = parse_level(required);
  ASSERT_TRUE(level.has_value()) << "unparseable JRF_REQUIRE_SIMD: " << required;
  EXPECT_GE(rank(detected_level()), rank(*level))
      << "CPU probe detected only " << to_string(detected_level())
      << " but the runner promises " << required;
}

TEST(SimdKernels, FindByteMatchesScalarAtEveryLevel) {
  for (const std::size_t n : boundary_sizes()) {
    auto data = random_bytes(n, 17u + static_cast<unsigned>(n));
    // Plant the needle at every chunk-straddling offset that fits.
    for (const std::size_t at : {std::size_t{0}, std::size_t{15},
                                 std::size_t{16}, std::size_t{31},
                                 std::size_t{32}, n - 1}) {
      if (at >= n) continue;
      auto planted = data;
      planted[at] = 0xA7;
      const std::size_t expected =
          find_byte(planted.data(), n, 0xA7, simd_level::scalar);
      for (const simd_level level : available_levels())
        EXPECT_EQ(find_byte(planted.data(), n, 0xA7, level), expected)
            << "n=" << n << " at=" << at << " level=" << to_string(level);
    }
    // And the no-match case.
    std::vector<unsigned char> blank(n, 'x');
    for (const simd_level level : available_levels())
      EXPECT_EQ(find_byte(blank.data(), n, 'y', level), npos) << n;
  }
}

TEST(SimdKernels, FindFirstOf2MatchesScalarAtEveryLevel) {
  for (const std::size_t n : boundary_sizes()) {
    auto data = random_bytes(n, 99u + static_cast<unsigned>(n));
    const std::size_t expected =
        find_first_of2(data.data(), n, '"', '\\', simd_level::scalar);
    for (const simd_level level : available_levels())
      EXPECT_EQ(find_first_of2(data.data(), n, '"', '\\', level), expected)
          << "n=" << n << " level=" << to_string(level);
  }
  // A backslash exactly on the 32-byte chunk edge.
  std::vector<unsigned char> buf(70, 'a');
  buf[32] = '\\';
  buf[33] = '"';
  for (const simd_level level : available_levels()) {
    EXPECT_EQ(find_first_of2(buf.data(), buf.size(), '"', '\\', level), 32u);
    EXPECT_EQ(find_first_of2(buf.data() + 33, buf.size() - 33, '"', '\\', level),
              0u);
  }
}

TEST(SimdKernels, StructuralMaskAndTokenClassesMatchScalar) {
  for (const std::size_t n : boundary_sizes()) {
    auto data = random_bytes(n, 7u + static_cast<unsigned>(n));
    for (std::size_t from = 0; from < n; from += 13) {
      const std::size_t want_token =
          find_token(data.data() + from, n - from, simd_level::scalar);
      const std::size_t want_non =
          find_non_token(data.data() + from, n - from, simd_level::scalar);
      for (const simd_level level : available_levels()) {
        EXPECT_EQ(find_token(data.data() + from, n - from, level), want_token);
        EXPECT_EQ(find_non_token(data.data() + from, n - from, level),
                  want_non);
        // structural_mask against the restated spec, chunk by chunk.
        const std::size_t width = chunk_width(level);
        std::uint64_t expected = 0;
        for (std::size_t i = 0; i < std::min(n - from, width); ++i)
          if (ref_structural_or_escape(data[from + i]))
            expected |= std::uint64_t{1} << i;
        EXPECT_EQ(structural_mask(data.data() + from, n - from, level),
                  expected)
            << "n=" << n << " from=" << from << " level=" << to_string(level);
      }
    }
  }
  // Cross-check the classifiers byte for byte: the token scans against the
  // class's single definition, the structural mask against its spec.
  for (int b = 0; b < 256; ++b) {
    const unsigned char byte = static_cast<unsigned char>(b);
    for (const simd_level level : available_levels()) {
      EXPECT_EQ(find_token(&byte, 1, level) == 0, ref_token(byte)) << b;
      EXPECT_EQ(find_non_token(&byte, 1, level) == 0, !ref_token(byte)) << b;
      EXPECT_EQ(structural_mask(&byte, 1, level) == 1,
                ref_structural_or_escape(byte))
          << b;
    }
  }
}

TEST(SimdKernels, MatchMaskAgreesAcrossLevelsAndSetShapes) {
  // Set shapes: 1-4 members (compare path), 5-8 (nibble path on AVX2), and
  // a set spanning > 8 high nibbles (forces the bitmap fallback).
  const std::vector<std::string> shapes = {
      "e", "ab", "{}[]", "temperature", "aeimquyC",
      "\x05\x15\x25\x35\x45\x55\x65\x75\x85\x95"};
  for (const std::string& shape : shapes) {
    const byte_set set{std::string_view{shape}};
    for (const std::size_t n : boundary_sizes()) {
      auto data = random_bytes(n, 41u + static_cast<unsigned>(n));
      // Sprinkle members so masks are non-trivial.
      for (std::size_t i = 0; i < n; i += 5)
        data[i] = static_cast<unsigned char>(shape[i % shape.size()]);
      for (const simd_level level : available_levels()) {
        const std::size_t width = chunk_width(level);
        for (std::size_t base = 0; base < n; base += width) {
          const std::size_t len = n - base;
          std::uint64_t expected = 0;
          for (std::size_t i = 0; i < std::min(len, width); ++i)
            if (set.contains(data[base + i]))
              expected |= std::uint64_t{1} << i;
          EXPECT_EQ(match_mask(data.data() + base, len, set, level), expected)
              << "set=" << shape.size() << "B n=" << n << " base=" << base
              << " level=" << to_string(level);
        }
      }
    }
  }
}

TEST(SimdKernels, ClassifyBlockMatchesScalarAtEveryLevel) {
  // Random bytes plus planted JSON structure so every output mask is
  // non-trivial, at block-boundary sizes and for both common separators.
  for (const unsigned char sep : {'\n', ','}) {
    for (const std::size_t n : boundary_sizes()) {
      auto data = random_bytes(n, 131u + static_cast<unsigned>(n));
      const std::string plant = "{\"a\\\":1,\"b\":[2]}\n";
      for (std::size_t i = 0; i < n; ++i)
        if (i % 3 == 0) data[i] = static_cast<unsigned char>(plant[i % plant.size()]);
      const block_class expected =
          classify_block(data.data(), n, sep, simd_level::scalar);
      std::uint64_t check_bs = 0, check_q = 0, check_sep = 0, check_st = 0;
      for (std::size_t i = 0; i < std::min<std::size_t>(n, 64); ++i) {
        const unsigned char b = data[i];
        const std::uint64_t bit = std::uint64_t{1} << i;
        if (b == '\\') check_bs |= bit;
        if (b == '"') check_q |= bit;
        if (b == sep) check_sep |= bit;
        if (b == '{' || b == '}' || b == '[' || b == ']' || b == ',')
          check_st |= bit;
      }
      EXPECT_EQ(expected.backslash, check_bs) << n;
      EXPECT_EQ(expected.quote, check_q) << n;
      EXPECT_EQ(expected.separator, check_sep) << n;
      EXPECT_EQ(expected.structural, check_st) << n;
      for (const simd_level level : available_levels()) {
        const block_class got = classify_block(data.data(), n, sep, level);
        EXPECT_EQ(got.backslash, expected.backslash)
            << "n=" << n << " level=" << to_string(level);
        EXPECT_EQ(got.quote, expected.quote) << n << " " << to_string(level);
        EXPECT_EQ(got.separator, expected.separator)
            << n << " " << to_string(level);
        EXPECT_EQ(got.structural, expected.structural)
            << n << " " << to_string(level);
      }
    }
  }
}

TEST(SimdKernels, ExpandBitsMatchesScalarAtEveryLevel) {
  std::mt19937 rng(2024);
  std::uniform_int_distribution<std::uint64_t> dist;
  std::vector<std::uint64_t> masks = {0,    1,    0x8000000000000000ULL,
                                      ~0ULL, 0xAAAAAAAAAAAAAAAAULL,
                                      0x0000000100000001ULL};
  for (int i = 0; i < 64; ++i) masks.push_back(dist(rng));
  for (const std::uint64_t mask : masks) {
    std::vector<std::uint32_t> expected;
    expand_bits(mask, 1000, expected, simd_level::scalar);
    for (const simd_level level : available_levels()) {
      std::vector<std::uint32_t> got = {7u};  // append semantics preserved
      expand_bits(mask, 1000, got, level);
      ASSERT_EQ(got.size(), expected.size() + 1) << to_string(level);
      EXPECT_EQ(got.front(), 7u);
      for (std::size_t k = 0; k < expected.size(); ++k)
        EXPECT_EQ(got[k + 1], expected[k])
            << "mask=" << mask << " k=" << k << " level=" << to_string(level);
    }
  }
}

TEST(SimdKernels, ByteSetMembershipIsExact) {
  const byte_set set{std::string_view{"temperature"}};
  EXPECT_EQ(set.size(), 7u);  // t e m p r a u
  for (int b = 0; b < 256; ++b) {
    const bool member = std::string("temperature").find(static_cast<char>(b)) !=
                        std::string::npos;
    EXPECT_EQ(set.contains(static_cast<unsigned char>(b)), member) << b;
  }
}

TEST(SimdKernels, FindSubstringMatchesScalarAtEveryLevel) {
  const std::string hay_text =
      "{\"e\":[{\"n\":\"temperature\",\"v\":21.5},{\"n\":\"temp\",\"v\":3}]}";
  const auto* hay = reinterpret_cast<const unsigned char*>(hay_text.data());
  const std::vector<std::string> needles = {
      "temperature", "temp", "t", "}]", "21.5", "missing", hay_text};
  for (const std::string& needle : needles) {
    const auto* nd = reinterpret_cast<const unsigned char*>(needle.data());
    const std::size_t expected = find_substring(
        hay, hay_text.size(), nd, needle.size(), simd_level::scalar);
    EXPECT_EQ(expected, hay_text.find(needle));
    for (const simd_level level : available_levels())
      EXPECT_EQ(find_substring(hay, hay_text.size(), nd, needle.size(), level),
                expected)
          << needle << " @" << to_string(level);
  }
}

TEST(SimdKernels, FindSubstringStraddlesChunkBoundaries) {
  // Needle placed so its first byte sits on every offset around the 16-
  // and 32-byte edges, including matches that begin in one vector block
  // and end in the next.
  const std::string needle = "needle!";
  const auto* nd = reinterpret_cast<const unsigned char*>(needle.data());
  for (std::size_t at : {std::size_t{10}, std::size_t{14}, std::size_t{15},
                         std::size_t{16}, std::size_t{26}, std::size_t{30},
                         std::size_t{31}, std::size_t{32}, std::size_t{33},
                         std::size_t{57}}) {
    std::string hay(70, '.');
    hay.replace(at, needle.size(), needle);
    const auto* h = reinterpret_cast<const unsigned char*>(hay.data());
    for (const simd_level level : available_levels())
      EXPECT_EQ(find_substring(h, hay.size(), nd, needle.size(), level), at)
          << "at=" << at << " level=" << to_string(level);
  }
  // False first+last candidates that fail the interior confirm.
  std::string decoys = "n!n....n!needle!n.....needle?.needle!";
  const auto* h = reinterpret_cast<const unsigned char*>(decoys.data());
  for (const simd_level level : available_levels())
    EXPECT_EQ(find_substring(h, decoys.size(), nd, needle.size(), level),
              decoys.find(needle));
}

TEST(SimdKernels, FindSubstringDegenerateInputs) {
  const auto* empty = reinterpret_cast<const unsigned char*>("");
  const auto* ab = reinterpret_cast<const unsigned char*>("ab");
  for (const simd_level level : available_levels()) {
    EXPECT_EQ(find_substring(ab, 2, empty, 0, level), 0u);  // empty needle
    EXPECT_EQ(find_substring(empty, 0, ab, 2, level), npos);
    EXPECT_EQ(find_substring(ab, 2, ab, 2, level), 0u);  // whole-buffer match
  }
}

}  // namespace
}  // namespace jrf::core::simd
