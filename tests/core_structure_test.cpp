// Unit tests for the structural-awareness tracker (paper Section III-C).
#include "core/structure.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/error.hpp"

namespace jrf::core {
namespace {

std::vector<structure_state> trace(std::string_view text, int depth_bits = 5) {
  structure_tracker tracker(depth_bits);
  std::vector<structure_state> out;
  out.reserve(text.size());
  for (const char c : text) out.push_back(tracker.step(static_cast<unsigned char>(c)));
  return out;
}

TEST(StructureTracker, DepthFollowsBrackets) {
  const auto t = trace(R"({"e":[{"v":1}]})");
  //                       0123456789...
  EXPECT_EQ(t[0].depth, 1);   // {
  EXPECT_EQ(t[5].depth, 2);   // [
  EXPECT_EQ(t[6].depth, 3);   // {
  EXPECT_EQ(t[12].depth, 2);  // }
  EXPECT_EQ(t[13].depth, 1);  // ]
  EXPECT_EQ(t[14].depth, 0);  // }
}

TEST(StructureTracker, DepthBeforeIsInteriorAtClose) {
  const auto t = trace("{}");
  EXPECT_EQ(t[1].depth_before, 1);
  EXPECT_EQ(t[1].depth, 0);
  EXPECT_TRUE(t[1].scope_close);
}

TEST(StructureTracker, ReturnsToZeroOnValidJson) {
  for (const std::string text :
       {R"({"a":1})", R"([1,[2,[3]]])", R"({"a":{"b":{"c":[]}}})"}) {
    const auto t = trace(text);
    EXPECT_EQ(t.back().depth, 0) << text;
  }
}

TEST(StructureTracker, BracketsInsideStringsAreMasked) {
  const auto t = trace(R"({"a":"}{]["})");
  for (std::size_t i = 6; i <= 10; ++i) {
    EXPECT_TRUE(t[i].masked) << i;
    EXPECT_FALSE(t[i].scope_open) << i;
    EXPECT_FALSE(t[i].scope_close) << i;
  }
  EXPECT_EQ(t.back().depth, 0);
}

TEST(StructureTracker, EscapedQuoteDoesNotCloseString) {
  // "a\"}" is one string containing a quote and a brace.
  const auto t = trace(R"({"k":"a\"}"})");
  EXPECT_EQ(t.back().depth, 0);
  // The brace inside the literal (index 9) is masked.
  EXPECT_TRUE(t[9].masked);
  EXPECT_FALSE(t[9].scope_close);
}

TEST(StructureTracker, DoubleBackslashEndsEscape) {
  // "a\\" is a complete string; the following '}' is structural.
  const auto t = trace(R"({"k":"a\\"})");
  EXPECT_EQ(t.back().depth, 0);
  EXPECT_TRUE(t.back().scope_close);
}

TEST(StructureTracker, PairBoundaryOnCommaAndClose) {
  const auto t = trace(R"({"a":1,"b":2})");
  EXPECT_TRUE(t[6].pair_boundary);   // ,
  EXPECT_TRUE(t.back().pair_boundary);  // }
  EXPECT_FALSE(t[1].pair_boundary);
}

TEST(StructureTracker, CommaInsideStringIsNotBoundary) {
  const auto t = trace(R"({"a":"x,y"})");
  EXPECT_FALSE(t[8].masked ? t[8].pair_boundary : true);
  EXPECT_TRUE(t[8].masked);
}

TEST(StructureTracker, SaturatesAtDepthLimit) {
  structure_tracker tracker(2);  // max depth 3
  for (int i = 0; i < 10; ++i) tracker.step('[');
  EXPECT_EQ(tracker.depth(), 3);
  for (int i = 0; i < 10; ++i) tracker.step(']');
  EXPECT_EQ(tracker.depth(), 0);  // clamps at zero, never negative
}

TEST(StructureTracker, ResetClearsStringState) {
  structure_tracker tracker;
  tracker.step('"');
  EXPECT_TRUE(tracker.in_string());
  tracker.reset();
  EXPECT_FALSE(tracker.in_string());
  EXPECT_EQ(tracker.depth(), 0);
}

TEST(StructureTracker, RejectsBadDepthBits) {
  EXPECT_THROW(structure_tracker(0), error);
  EXPECT_THROW(structure_tracker(17), error);
}

TEST(StructureTracker, Listing1MeasurementObjectsAtSameDepth) {
  // The paper's running example: every measurement object of the SenML
  // array lives at depth 3 (record object -> "e" array -> measurement).
  const std::string record =
      R"({"e":[{"v":"35.2","u":"far","n":"temperature"},)"
      R"({"v":"12","u":"per","n":"humidity"}],"bt":1422748800000})";
  structure_tracker tracker;
  std::vector<int> open_depths;
  for (const char c : record) {
    const auto st = tracker.step(static_cast<unsigned char>(c));
    if (st.scope_open && tracker.depth() == 3) open_depths.push_back(st.depth);
  }
  EXPECT_EQ(open_depths.size(), 2u);  // two measurement objects
  EXPECT_EQ(tracker.depth(), 0);
}

}  // namespace
}  // namespace jrf::core
