// Determinism tests for the synthetic dataset generators: the paper's
// evaluation (selectivities, FPRs, throughput) is only reproducible if the
// same seed always yields the same byte stream, on any machine, regardless
// of how the stream is chunked.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "data/smartcity.hpp"
#include "data/taxi.hpp"
#include "data/twitter.hpp"
#include "json/ndjson.hpp"
#include "json/parser.hpp"

namespace jrf::data {
namespace {

constexpr std::size_t kRecords = 500;

template <typename Generator>
void expect_same_seed_same_bytes(std::uint64_t seed) {
  Generator a(seed);
  Generator b(seed);
  EXPECT_EQ(a.stream(kRecords), b.stream(kRecords));
}

template <typename Generator>
void expect_chunking_irrelevant(std::uint64_t seed) {
  Generator whole(seed);
  Generator chunked(seed);
  const std::string expected = whole.stream(kRecords);
  std::string actual = chunked.stream(kRecords / 2);
  actual += chunked.stream(kRecords - kRecords / 2);
  EXPECT_EQ(actual, expected);
}

template <typename Generator>
void expect_record_matches_stream(std::uint64_t seed) {
  Generator by_record(seed);
  Generator by_stream(seed);
  std::string rebuilt;
  for (std::size_t i = 0; i < 50; ++i) {
    rebuilt += by_record.record();
    rebuilt += '\n';
  }
  EXPECT_EQ(rebuilt, by_stream.stream(50));
}

template <typename Generator>
void expect_different_seeds_differ() {
  Generator a(1);
  Generator b(2);
  EXPECT_NE(a.stream(kRecords), b.stream(kRecords));
}

TEST(DataDeterminism, SmartcitySameSeedSameBytes) {
  expect_same_seed_same_bytes<smartcity_generator>(0x5C17);
  expect_same_seed_same_bytes<smartcity_generator>(42);
}

TEST(DataDeterminism, TaxiSameSeedSameBytes) {
  expect_same_seed_same_bytes<taxi_generator>(0x7A21);
  expect_same_seed_same_bytes<taxi_generator>(42);
}

TEST(DataDeterminism, TwitterSameSeedSameBytes) {
  expect_same_seed_same_bytes<twitter_generator>(0x7411);
  expect_same_seed_same_bytes<twitter_generator>(42);
}

TEST(DataDeterminism, ChunkingDoesNotChangeTheStream) {
  expect_chunking_irrelevant<smartcity_generator>(7);
  expect_chunking_irrelevant<taxi_generator>(7);
  expect_chunking_irrelevant<twitter_generator>(7);
}

TEST(DataDeterminism, RecordCallsMatchStreamCalls) {
  expect_record_matches_stream<smartcity_generator>(11);
  expect_record_matches_stream<taxi_generator>(11);
  expect_record_matches_stream<twitter_generator>(11);
}

TEST(DataDeterminism, DifferentSeedsProduceDifferentStreams) {
  expect_different_seeds_differ<smartcity_generator>();
  expect_different_seeds_differ<taxi_generator>();
  expect_different_seeds_differ<twitter_generator>();
}

TEST(DataDeterminism, StreamsAreWellFormedNdjson) {
  // Every record of the JSON generators must parse; the stream must contain
  // exactly the requested number of '\n'-terminated records.
  smartcity_generator sc(3);
  taxi_generator tx(3);
  for (const std::string& stream : {sc.stream(100), tx.stream(100)}) {
    ASSERT_FALSE(stream.empty());
    EXPECT_EQ(stream.back(), '\n');
    const auto records = json::split_records(stream);
    ASSERT_EQ(records.size(), 100u);
    for (std::string_view record : records)
      EXPECT_NO_THROW(json::parse(record)) << record;
  }
}

TEST(DataDeterminism, TwitterStreamIsNewlineFramed) {
  twitter_generator tw(3);
  const std::string stream = tw.stream(100);
  ASSERT_FALSE(stream.empty());
  EXPECT_EQ(stream.back(), '\n');
  EXPECT_EQ(json::split_records(stream).size(), 100u);
}

}  // namespace
}  // namespace jrf::data
