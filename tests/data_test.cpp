// Tests for the synthetic dataset generators: schema validity, determinism,
// and the calibration targets the paper's evaluation depends on
// (Table VIII selectivities, Table I-III collision structure).
#include <gtest/gtest.h>

#include <string>

#include "core/raw_filter.hpp"
#include "data/smartcity.hpp"
#include "data/stream.hpp"
#include "data/taxi.hpp"
#include "data/twitter.hpp"
#include "json/ndjson.hpp"
#include "json/parser.hpp"
#include "query/eval.hpp"
#include "query/riotbench.hpp"

namespace jrf::data {
namespace {

constexpr std::size_t kCalibrationRecords = 12000;

// ------------------------------------------------------------------- schema

TEST(SmartCity, RecordsAreValidJson) {
  smartcity_generator gen;
  for (int i = 0; i < 200; ++i)
    EXPECT_NO_THROW(json::parse(gen.record())) << i;
}

TEST(SmartCity, SchemaMatchesListing1) {
  smartcity_generator gen(1);  // seed without maintenance record up front
  const json::value doc = json::parse(gen.record());
  ASSERT_TRUE(doc.is_object());
  const auto& members = doc.as_object();
  ASSERT_EQ(members.size(), 2u);
  EXPECT_EQ(members[0].first, "e");
  EXPECT_EQ(members[1].first, "bt");
  const auto& measurements = members[0].second.as_array();
  ASSERT_EQ(measurements.size(), 5u);
  // Each measurement is {"v":...,"u":...,"n":...} in Listing 1 order.
  for (const auto& m : measurements) {
    const auto& fields = m.as_object();
    ASSERT_EQ(fields.size(), 3u);
    EXPECT_EQ(fields[0].first, "v");
    EXPECT_EQ(fields[1].first, "u");
    EXPECT_EQ(fields[2].first, "n");
    EXPECT_TRUE(fields[0].second.is_string());  // values quoted as in SenML
  }
  EXPECT_EQ(measurements[0].as_object()[2].second.as_string(), "temperature");
  EXPECT_EQ(measurements[4].as_object()[2].second.as_string(), "airquality_raw");
}

TEST(SmartCity, TimestampsAdvance) {
  smartcity_generator gen;
  const json::value a = json::parse(gen.record());
  const json::value b = json::parse(gen.record());
  const auto bt = [](const json::value& doc) {
    return doc.as_object().back().second.as_number().to_double();
  };
  EXPECT_GT(bt(b), bt(a));
}

TEST(Taxi, RecordsAreValidJson) {
  taxi_generator gen;
  for (int i = 0; i < 200; ++i)
    EXPECT_NO_THROW(json::parse(gen.record())) << i;
}

TEST(Taxi, TotalAmountAlwaysPresentTollsSometimes) {
  taxi_generator gen;
  int with_tolls = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const std::string record = gen.record();
    EXPECT_NE(record.find("total_amount"), std::string::npos);
    if (record.find("tolls_amount") != std::string::npos) ++with_tolls;
  }
  // Presence rate around the configured ~12-16 %.
  EXPECT_GT(with_tolls, n / 20);
  EXPECT_LT(with_tolls, n / 3);
}

TEST(Taxi, CorrelatedTripFields) {
  // trip_time_in_secs tracks trip_distance (paper: "highly dependent").
  taxi_generator gen;
  double short_trip_time = 0;
  double long_trip_time = 0;
  int short_count = 0;
  int long_count = 0;
  for (int i = 0; i < 2000; ++i) {
    const json::value doc = json::parse(gen.record());
    double distance = 0;
    double secs = 0;
    for (const auto& [key, value] : doc.as_object()) {
      if (key == "trip_distance") distance = value.as_number().to_double();
      if (key == "trip_time_in_secs") secs = value.as_number().to_double();
    }
    if (distance < 1.5) {
      short_trip_time += secs;
      ++short_count;
    } else if (distance > 5.0) {
      long_trip_time += secs;
      ++long_count;
    }
  }
  ASSERT_GT(short_count, 0);
  ASSERT_GT(long_count, 0);
  EXPECT_GT(long_trip_time / long_count, 2.0 * short_trip_time / short_count);
}

TEST(Twitter, RecordsHaveSixCsvFields) {
  twitter_generator gen;
  for (int i = 0; i < 100; ++i) {
    const std::string record = gen.record();
    // Six quoted fields -> 12 quotes minimum (text itself adds none; the
    // generator never emits '"' inside fields).
    EXPECT_EQ(std::count(record.begin(), record.end(), '"'), 12) << record;
  }
}

// -------------------------------------------------------------- determinism

TEST(Generators, SameSeedSameStream) {
  EXPECT_EQ(smartcity_generator(7).stream(50), smartcity_generator(7).stream(50));
  EXPECT_EQ(taxi_generator(7).stream(50), taxi_generator(7).stream(50));
  EXPECT_EQ(twitter_generator(7).stream(50), twitter_generator(7).stream(50));
}

TEST(Generators, DifferentSeedDifferentStream) {
  EXPECT_NE(smartcity_generator(1).stream(50), smartcity_generator(2).stream(50));
}

// -------------------------------------------------- selectivity calibration

TEST(Calibration, QS0SelectivityNearPaper) {
  smartcity_generator gen;
  const std::string stream = gen.stream(kCalibrationRecords);
  const double sel = query::selectivity(query::label_stream(query::riotbench::qs0(), stream));
  // Paper Table VIII: 63.9 %.
  EXPECT_NEAR(sel, 0.639, 0.05);
}

TEST(Calibration, QS1SelectivityNearPaper) {
  smartcity_generator gen;
  const std::string stream = gen.stream(kCalibrationRecords);
  const double sel = query::selectivity(query::label_stream(query::riotbench::qs1(), stream));
  // Paper Table VIII: 5.4 %.
  EXPECT_NEAR(sel, 0.054, 0.03);
}

TEST(Calibration, QTSelectivityNearPaper) {
  taxi_generator gen;
  const std::string stream = gen.stream(kCalibrationRecords);
  const double sel = query::selectivity(query::label_stream(query::riotbench::qt(), stream));
  // Paper Table VIII: 5.7 %.
  EXPECT_NEAR(sel, 0.057, 0.03);
}

// ------------------------------------------- collision structure (Table II/III)

double string_fpr(std::string_view stream, const std::string& needle, int block) {
  core::raw_filter rf(core::string_leaf(needle, block));
  return core::false_positive_rate(rf.filter_stream(stream),
                                   contains_labels(stream, needle));
}

TEST(Collisions, TaxiTollsAnagramTrap) {
  taxi_generator gen;
  const std::string stream = gen.stream(4000);
  // Paper Table II: s1("tolls_amount") FPR 1.000 via "total_amount",
  // fixed by B = 2.
  EXPECT_GT(string_fpr(stream, "tolls_amount", 1), 0.99);
  EXPECT_DOUBLE_EQ(string_fpr(stream, "tolls_amount", 2), 0.0);
}

TEST(Collisions, TwitterUserRunsNearUbiquitous) {
  twitter_generator gen;
  const std::string stream = gen.stream(4000);
  // Paper Table III: s1("user") FPR 1.000.
  EXPECT_GT(string_fpr(stream, "user", 1), 0.75);
}

TEST(Collisions, TwitterLangModerate) {
  twitter_generator gen;
  const std::string stream = gen.stream(4000);
  // Paper Table III: s1("lang") FPR 0.181.
  const double fpr = string_fpr(stream, "lang", 1);
  EXPECT_GT(fpr, 0.05);
  EXPECT_LT(fpr, 0.45);
}

TEST(Collisions, TwitterLocationRare) {
  twitter_generator gen;
  const std::string stream = gen.stream(4000);
  // Paper Table III: s1("location") FPR 0.049.
  const double fpr = string_fpr(stream, "location", 1);
  EXPECT_GT(fpr, 0.005);
  EXPECT_LT(fpr, 0.15);
}

TEST(Collisions, TwitterLongStringsClean) {
  twitter_generator gen;
  const std::string stream = gen.stream(4000);
  // Paper Table III: created_at 0.001, favourites_count 0.001.
  EXPECT_LT(string_fpr(stream, "created_at", 1), 0.01);
  EXPECT_LT(string_fpr(stream, "favourites_count", 1), 0.01);
}

TEST(Collisions, B2NeverWorseThanB1) {
  twitter_generator gen;
  const std::string stream = gen.stream(2000);
  for (const std::string needle :
       {"user", "lang", "location", "created_at"}) {
    EXPECT_LE(string_fpr(stream, needle, 2), string_fpr(stream, needle, 1))
        << needle;
  }
}

// ------------------------------------------------------------------- stream

TEST(Stream, InflateReachesTarget) {
  const std::string base = "{\"a\":1}\n{\"b\":2}\n";
  const std::string big = inflate(base, 1000);
  EXPECT_GE(big.size(), 1000u);
  EXPECT_EQ(big.size() % base.size(), 0u);
  EXPECT_EQ(big.substr(0, base.size()), base);
}

TEST(Stream, ContainsLabels) {
  const auto labels = contains_labels("abc\nxbcx\nzzz\n", "bc");
  ASSERT_EQ(labels.size(), 3u);
  EXPECT_TRUE(labels[0]);
  EXPECT_TRUE(labels[1]);
  EXPECT_FALSE(labels[2]);
}

TEST(Stream, MeanRecordBytes) {
  EXPECT_DOUBLE_EQ(mean_record_bytes("abcd\nab\n"), 4.0);
}

}  // namespace
}  // namespace jrf::data
