// Tests for design-space exploration: signal memoization correctness,
// Pareto-front properties, sampling, and the evolutionary search.
#include <gtest/gtest.h>

#include <string>

#include "core/raw_filter.hpp"
#include "data/smartcity.hpp"
#include "dse/evolve.hpp"
#include "dse/explore.hpp"
#include "dse/signals.hpp"
#include "query/eval.hpp"
#include "query/parse.hpp"
#include "query/riotbench.hpp"
#include "util/error.hpp"

namespace jrf::dse {
namespace {

std::string small_stream() {
  static const std::string stream = data::smartcity_generator().stream(800);
  return stream;
}

// ------------------------------------------------------------ signal table

TEST(SignalTable, BareAtomMatchesRawFilter) {
  const auto spec = core::string_spec{core::string_technique::substring, 1,
                                      "temperature"};
  const std::vector<atom> atoms{atom::bare(spec)};
  const signal_table table(atoms, small_stream());

  core::raw_filter reference(core::leaf(spec));
  const auto expected = reference.filter_stream(small_stream());
  ASSERT_EQ(table.record_count(), expected.size());
  for (std::size_t r = 0; r < expected.size(); ++r)
    EXPECT_EQ(table.fired(r, 0), expected[r]) << r;
}

TEST(SignalTable, GroupAtomMatchesRawFilter) {
  const auto s = core::string_spec{core::string_technique::substring, 1,
                                   "temperature"};
  const auto v =
      core::value_spec{numrange::range_spec::real_range("0.7", "35.1"), {}};
  const std::vector<atom> atoms{
      atom::make_group(core::group_kind::scope, {s, v})};
  const signal_table table(atoms, small_stream());

  core::raw_filter reference(
      core::make_group(core::group_kind::scope, {s, v}));
  const auto expected = reference.filter_stream(small_stream());
  ASSERT_EQ(table.record_count(), expected.size());
  for (std::size_t r = 0; r < expected.size(); ++r)
    EXPECT_EQ(table.fired(r, 0), expected[r]) << r;
}

TEST(SignalTable, ConjunctionFprMatchesComposedFilter) {
  const auto s = core::string_spec{core::string_technique::substring, 1,
                                   "humidity"};
  const auto v =
      core::value_spec{numrange::range_spec::real_range("20.3", "69.1"), {}};
  const std::vector<atom> atoms{atom::bare(s), atom::bare(v)};
  const signal_table table(atoms, small_stream());

  const auto q = query::riotbench::qs0();
  const auto labels = query::label_stream(q, small_stream());
  const auto packed = signal_table::pack(labels);

  core::raw_filter composed(core::conj({core::leaf(s), core::leaf(v)}));
  const double expected = core::false_positive_rate(
      composed.filter_stream(small_stream()), labels);
  const std::vector<std::size_t> lanes{0, 1};
  EXPECT_DOUBLE_EQ(conjunction_fpr(table, lanes, packed), expected);
}

// ------------------------------------------------------------- exploration

class ExploreFixture : public ::testing::Test {
 protected:
  static const exploration& result() {
    static const exploration r = [] {
      const auto q = query::riotbench::qs0();
      const auto labels = query::label_stream(q, small_stream());
      explore_options options;
      options.exact_pareto = false;
      return explore(q, small_stream(), labels, options);
    }();
    return r;
  }
};

TEST_F(ExploreFixture, EnumeratesFullCrossProduct) {
  // 5 predicates x (omit + value + 3x(string/flat/grouped)) = 11^5 - 1.
  EXPECT_EQ(result().points.size(), 161050u);
}

TEST_F(ExploreFixture, FrontIsNonDominated) {
  for (const std::size_t a : result().pareto)
    for (const std::size_t b : result().pareto) {
      if (a == b) continue;
      const auto& pa = result().points[a];
      const auto& pb = result().points[b];
      const bool dominates = pa.fpr <= pb.fpr && pa.luts <= pb.luts &&
                             (pa.fpr < pb.fpr || pa.luts < pb.luts);
      EXPECT_FALSE(dominates) << a << " dominates " << b;
    }
}

TEST_F(ExploreFixture, FrontCoversEveryPoint) {
  // Every point is weakly dominated by some front point.
  for (std::size_t i = 0; i < result().points.size(); i += 997) {
    const auto& p = result().points[i];
    bool covered = false;
    for (const std::size_t f : result().pareto) {
      const auto& q = result().points[f];
      if (q.fpr <= p.fpr && q.luts <= p.luts) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << i;
  }
}

TEST_F(ExploreFixture, FrontSortedAndMonotone) {
  const auto& front = result().pareto;
  for (std::size_t i = 1; i < front.size(); ++i) {
    EXPECT_LT(result().points[front[i - 1]].luts,
              result().points[front[i]].luts);
    EXPECT_GT(result().points[front[i - 1]].fpr,
              result().points[front[i]].fpr);
  }
}

TEST_F(ExploreFixture, AttributesCountedPerPoint) {
  for (std::size_t i = 0; i < result().points.size(); i += 1777) {
    const auto& p = result().points[i];
    int attrs = 0;
    for (const auto& c : p.choices)
      if (c.mode != query::attribute_mode::omit) ++attrs;
    EXPECT_EQ(p.attributes, attrs);
    EXPECT_GE(p.attributes, 1);
  }
}

TEST(Explore, RejectsDisjunctiveQueries) {
  const auto q = query::parse_filter_expression(
      R"(("a" >= 1) OR ("b" >= 2))");
  const std::vector<bool> labels;
  EXPECT_THROW(explore(q, "", labels), error);
}

TEST(Explore, RejectsLabelMismatch) {
  const auto q = query::riotbench::qs0();
  const std::vector<bool> labels(3, false);  // stream has more records
  EXPECT_THROW(explore(q, small_stream(), labels), error);
}

TEST(Explore, SamplingApproximatesFullFpr) {
  const auto q = query::riotbench::qs0();
  const auto labels = query::label_stream(q, small_stream());
  explore_options full_options;
  full_options.exact_pareto = false;
  const auto full = explore(q, small_stream(), labels, full_options);

  explore_options sampled_options = full_options;
  sampled_options.sample_fraction = 0.5;
  const auto sampled = explore(q, small_stream(), labels, sampled_options);
  ASSERT_EQ(sampled.points.size(), full.points.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < full.points.size(); i += 509)
    worst = std::max(worst,
                     std::abs(full.points[i].fpr - sampled.points[i].fpr));
  EXPECT_LT(worst, 0.25);  // half the records still tracks the trend
}

// -------------------------------------------------------------- evolution

TEST(Evolve, FrontIsNonDominatedAndViable) {
  const auto q = query::riotbench::qs0();
  const auto labels = query::label_stream(q, small_stream());
  evolve_options options;
  options.generations = 8;
  options.population = 24;
  options.space.exact_pareto = false;
  const auto result = evolve(q, small_stream(), labels, options);

  ASSERT_FALSE(result.front.empty());
  EXPECT_GT(result.evaluations, 0u);
  for (const auto& a : result.front) {
    EXPECT_GE(a.attributes, 1);
    for (const auto& b : result.front) {
      const bool dominates = b.fpr <= a.fpr && b.luts <= a.luts &&
                             (b.fpr < a.fpr || b.luts < a.luts);
      EXPECT_FALSE(dominates);
    }
  }
}

TEST(Evolve, DeterministicForSeed) {
  const auto q = query::riotbench::qs0();
  const auto labels = query::label_stream(q, small_stream());
  evolve_options options;
  options.generations = 4;
  options.population = 16;
  options.space.exact_pareto = false;
  const auto a = evolve(q, small_stream(), labels, options);
  const auto b = evolve(q, small_stream(), labels, options);
  ASSERT_EQ(a.front.size(), b.front.size());
  for (std::size_t i = 0; i < a.front.size(); ++i)
    EXPECT_EQ(a.front[i].notation, b.front[i].notation);
}

}  // namespace
}  // namespace jrf::dse
