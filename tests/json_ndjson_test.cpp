#include "json/ndjson.hpp"

#include <gtest/gtest.h>

namespace jrf::json {
namespace {

TEST(Ndjson, SplitBasic) {
  const auto records = split_records("{\"a\":1}\n{\"b\":2}\n");
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0], "{\"a\":1}");
  EXPECT_EQ(records[1], "{\"b\":2}");
}

TEST(Ndjson, TrailingRecordWithoutNewline) {
  const auto records = split_records("{}\n{\"x\":1}");
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1], "{\"x\":1}");
}

TEST(Ndjson, SkipsEmptyLines) {
  const auto records = split_records("\n\n{}\n\n{}\n\n");
  EXPECT_EQ(records.size(), 2u);
}

TEST(Ndjson, EmptyStream) {
  EXPECT_TRUE(split_records("").empty());
  EXPECT_TRUE(split_records("\n").empty());
}

TEST(Ndjson, ForEachVisitsAll) {
  int count = 0;
  for_each_record("a\nb\nc\n", [&](std::string_view) { ++count; });
  EXPECT_EQ(count, 3);
}

TEST(Ndjson, JoinRoundTrip) {
  const std::vector<std::string> records{"{\"a\":1}", "{\"b\":2}"};
  const std::string stream = join_records(records);
  EXPECT_EQ(stream, "{\"a\":1}\n{\"b\":2}\n");
  const auto split = split_records(stream);
  ASSERT_EQ(split.size(), 2u);
  EXPECT_EQ(split[0], records[0]);
  EXPECT_EQ(split[1], records[1]);
}

}  // namespace
}  // namespace jrf::json
