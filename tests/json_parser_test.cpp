#include "json/parser.hpp"

#include <gtest/gtest.h>

#include "json/writer.hpp"
#include "util/error.hpp"

namespace jrf::json {
namespace {

TEST(JsonParser, Scalars) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_TRUE(parse("true").as_bool());
  EXPECT_FALSE(parse("false").as_bool());
  EXPECT_EQ(parse("42").as_number().to_string(), "42");
  EXPECT_EQ(parse("-3.5").as_number().to_string(), "-3.5");
  EXPECT_EQ(parse("\"hi\"").as_string(), "hi");
}

TEST(JsonParser, NumbersKeptExact) {
  EXPECT_EQ(parse("1422748800000").as_number().to_string(), "1422748800000");
  EXPECT_EQ(parse("2.1e3").as_number().to_string(), "2100");
  EXPECT_EQ(parse("100e-1").as_number().to_string(), "10");
  EXPECT_EQ(parse("0.30000000000000004").as_number().to_string(),
            "0.30000000000000004");
}

TEST(JsonParser, Arrays) {
  const value v = parse("[1, 2, 3]");
  ASSERT_TRUE(v.is_array());
  ASSERT_EQ(v.as_array().size(), 3u);
  EXPECT_EQ(v.as_array()[2].as_number().to_string(), "3");
  EXPECT_TRUE(parse("[]").as_array().empty());
  EXPECT_TRUE(parse("[ ]").as_array().empty());
}

TEST(JsonParser, Objects) {
  const value v = parse(R"({"a": 1, "b": "two"})");
  ASSERT_TRUE(v.is_object());
  ASSERT_EQ(v.as_object().size(), 2u);
  EXPECT_EQ(v.find("a")->as_number().to_string(), "1");
  EXPECT_EQ(v.find("b")->as_string(), "two");
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_TRUE(parse("{}").as_object().empty());
}

TEST(JsonParser, MemberOrderPreserved) {
  const value v = parse(R"({"z": 1, "a": 2, "m": 3})");
  const auto& members = v.as_object();
  EXPECT_EQ(members[0].first, "z");
  EXPECT_EQ(members[1].first, "a");
  EXPECT_EQ(members[2].first, "m");
}

TEST(JsonParser, DuplicateKeysAllowed) {
  const value v = parse(R"({"k": 1, "k": 2})");
  EXPECT_EQ(v.as_object().size(), 2u);
  EXPECT_EQ(v.find("k")->as_number().to_string(), "1");
}

TEST(JsonParser, StringEscapes) {
  EXPECT_EQ(parse(R"("a\"b")").as_string(), "a\"b");
  EXPECT_EQ(parse(R"("a\\b")").as_string(), "a\\b");
  EXPECT_EQ(parse(R"("a\nb")").as_string(), "a\nb");
  EXPECT_EQ(parse(R"("a\tb")").as_string(), "a\tb");
  EXPECT_EQ(parse(R"("A")").as_string(), "A");
  EXPECT_EQ(parse(R"("é")").as_string(), "\xC3\xA9");
  EXPECT_EQ(parse(R"("€")").as_string(), "\xE2\x82\xAC");
}

TEST(JsonParser, NestedStructures) {
  const value v = parse(R"({"e":[{"v":"35.2","u":"far","n":"temperature"}],"bt":1422748800000})");
  const value* e = v.find("e");
  ASSERT_NE(e, nullptr);
  ASSERT_TRUE(e->is_array());
  const value& m = e->as_array()[0];
  EXPECT_EQ(m.find("n")->as_string(), "temperature");
  EXPECT_EQ(m.find("v")->as_string(), "35.2");
  EXPECT_EQ(v.find("bt")->as_number().to_string(), "1422748800000");
}

TEST(JsonParser, NumericViewOfQuotedValues) {
  const value v = parse(R"({"v":"35.2"})");
  const auto n = v.find("v")->numeric();
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(n->to_string(), "35.2");
  EXPECT_FALSE(parse(R"({"v":"far"})").find("v")->numeric().has_value());
  EXPECT_FALSE(parse("[null]").as_array()[0].numeric().has_value());
}

TEST(JsonParser, RejectsMalformed) {
  for (const char* text :
       {"", "{", "}", "[", "[1,", "{\"a\"}", "{\"a\":}", "{a:1}", "tru",
        "01", "1.", "1e", "\"unterminated", "[1 2]", "{\"a\":1,}",
        "\"bad\\escape\"", "nan", "+1"}) {
    EXPECT_THROW(parse(text), jrf::parse_error) << text;
  }
}

TEST(JsonParser, RejectsTrailingGarbage) {
  EXPECT_THROW(parse("1 2"), jrf::parse_error);
  EXPECT_THROW(parse("{} x"), jrf::parse_error);
  EXPECT_NO_THROW(parse("  {}  "));
}

TEST(JsonParser, RejectsControlCharactersInStrings) {
  EXPECT_THROW(parse("\"a\nb\""), jrf::parse_error);
}

TEST(JsonParser, RejectsDeepNesting) {
  std::string deep(300, '[');
  deep += std::string(300, ']');
  EXPECT_THROW(parse(deep), jrf::parse_error);
}

TEST(JsonParser, ParsePrefixReportsConsumed) {
  std::size_t consumed = 0;
  const value v = parse_prefix("{\"a\":1}rest", consumed);
  EXPECT_EQ(consumed, 7u);
  EXPECT_TRUE(v.is_object());
}

TEST(JsonParser, RoundTripThroughWriter) {
  const char* docs[] = {
      R"({"e":[{"v":"35.2","u":"far","n":"temperature"},{"v":"12","u":"per","n":"humidity"}],"bt":1422748800000})",
      R"([1,2.5,"x",null,true,false,{"nested":[{}]}])",
      R"({"s":"quote \" backslash \\ newline \n"})",
  };
  for (const char* doc : docs) {
    const value v = parse(doc);
    const value again = parse(write(v));
    EXPECT_TRUE(v == again) << doc;
  }
}

}  // namespace
}  // namespace jrf::json
