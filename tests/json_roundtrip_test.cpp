// Parser -> value -> writer round-trip tests: escapes, nested arrays, and
// NDJSON edge cases.  The DOM is the ground truth that raw-filter
// false-positive rates are measured against, so parse(write(parse(x))) must
// be a fixed point and generator streams must re-frame byte-compatibly.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "json/ndjson.hpp"
#include "json/parser.hpp"
#include "json/value.hpp"
#include "json/writer.hpp"
#include "util/error.hpp"

namespace jrf::json {
namespace {

// parse -> write -> parse must reach a fixed point after one write: the
// first serialization may normalise (drop whitespace, decode \uXXXX), but
// re-serialising the reparse must be byte-identical.
void expect_roundtrip(std::string_view text) {
  const value first = parse(text);
  const std::string written = write(first);
  const value second = parse(written);
  EXPECT_EQ(first, second) << "value changed across round-trip of: " << text;
  EXPECT_EQ(write(second), written)
      << "serialization not a fixed point for: " << text;
}

TEST(JsonRoundtrip, Scalars) {
  expect_roundtrip("null");
  expect_roundtrip("true");
  expect_roundtrip("false");
  expect_roundtrip("0");
  expect_roundtrip("-12.5");
  expect_roundtrip("1e3");
  expect_roundtrip("\"\"");
  expect_roundtrip("\"plain\"");
}

TEST(JsonRoundtrip, SimpleEscapesSurvive) {
  const value v = parse(R"("a\"b\\c\nd\te\rf\bg\fh")");
  EXPECT_EQ(v.as_string(), "a\"b\\c\nd\te\rf\bg\fh");
  expect_roundtrip(R"("a\"b\\c\nd\te\rf\bg\fh")");
}

TEST(JsonRoundtrip, UnicodeEscapesDecodeOnce) {
  // A decodes to 'A' and é to UTF-8 "é"; the writer re-emits the
  // decoded bytes raw, and the round-trip must be stable from then on.
  const value v = parse("\"\\u0041\\u00e9\"");
  EXPECT_EQ(v.as_string(), "A\xc3\xa9");
  expect_roundtrip("\"\\u0041\\u00e9\"");
}

TEST(JsonRoundtrip, ControlCharactersReescape) {
  // Control characters below 0x20 must come back out as \uXXXX (or the
  // short escapes); the written form must itself reparse to the same bytes.
  const value v = parse("\"\\u0001\\u001f\"");
  EXPECT_EQ(v.as_string(), std::string("\x01\x1f"));
  const std::string written = write(v);
  EXPECT_EQ(parse(written).as_string(), v.as_string());
  EXPECT_EQ(parse(write(parse(written))), v);
}

TEST(JsonRoundtrip, EscapeHelperMatchesParser) {
  const std::string raw = "tab\t quote\" slash\\ nl\n";
  const std::string quoted = "\"" + escape(raw) + "\"";
  EXPECT_EQ(parse(quoted).as_string(), raw);
}

TEST(JsonRoundtrip, NestedArrays) {
  expect_roundtrip("[]");
  expect_roundtrip("[[]]");
  expect_roundtrip("[[1,2],[3,[4,[5]]],[]]");
  expect_roundtrip(R"([{"a":[1,2]},[{"b":null}],[[["deep"]]]])");
}

TEST(JsonRoundtrip, ObjectsPreserveMemberOrderAndDuplicates) {
  // Member order is load-bearing (raw filters are order-sensitive) and the
  // grammar permits duplicate keys; both must survive the round-trip.
  const value v = parse(R"({"b":1,"a":2,"b":3})");
  const auto& members = v.as_object();
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0].first, "b");
  EXPECT_EQ(members[1].first, "a");
  EXPECT_EQ(members[2].first, "b");
  EXPECT_EQ(write(v), R"({"b":1,"a":2,"b":3})");
}

TEST(JsonRoundtrip, CompactWriterDropsWhitespaceOnly) {
  const std::string pretty = R"({
    "e" : [ { "v" : "23.5" , "u" : "far" } ],
    "bt" : 1422748800000
  })";
  const std::string compact = R"({"e":[{"v":"23.5","u":"far"}],"bt":1422748800000})";
  EXPECT_EQ(write(parse(pretty)), compact);
}

TEST(JsonRoundtrip, NumbersKeepExactText) {
  // util::decimal keeps numbers exact; writing must not reformat them into
  // a different (e.g. float-rounded) literal that a re-parse reads back
  // differently.
  for (std::string_view literal :
       {"0.1", "-0.0", "26282", "1422748800000", "2.25e-3", "1E+10"}) {
    const value v = parse(literal);
    EXPECT_EQ(parse(write(v)).as_number(), v.as_number())
        << "literal: " << literal;
  }
}

TEST(JsonRoundtrip, NdjsonStreamRoundtrip) {
  // Generator wire format: '\n'-terminated records, possibly with empty
  // lines injected by upstream framing.  split -> parse -> write -> join
  // must preserve every record's value.
  const std::string stream =
      "{\"a\":1}\n"
      "\n"
      "{\"b\":[1,2,3]}\n"
      "\n\n"
      "{\"c\":\"line\\nbreak\"}\n";
  const auto records = split_records(stream);
  ASSERT_EQ(records.size(), 3u);

  std::vector<std::string> rewritten;
  for (std::string_view record : records)
    rewritten.push_back(write(parse(record)));
  const std::string rejoined = join_records(rewritten);

  const auto reparsed = split_records(rejoined);
  ASSERT_EQ(reparsed.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i)
    EXPECT_EQ(parse(reparsed[i]), parse(records[i])) << "record " << i;
}

TEST(JsonRoundtrip, NdjsonTrailingRecordWithoutNewline) {
  const auto records = split_records("{\"a\":1}\n{\"b\":2}");
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(parse(records[1]), parse("{\"b\":2}"));
}

TEST(JsonRoundtrip, ParsePrefixConsumesExactlyOneRecord) {
  const std::string two = "  {\"a\":1}{\"b\":2}";
  std::size_t consumed = 0;
  const value first = parse_prefix(two, consumed);
  EXPECT_EQ(write(first), "{\"a\":1}");
  const value second = parse(std::string_view(two).substr(consumed));
  EXPECT_EQ(write(second), "{\"b\":2}");
}

TEST(JsonRoundtrip, MalformedInputThrows) {
  EXPECT_THROW(parse("{\"a\":1"), jrf::parse_error);
  EXPECT_THROW(parse("[1,2,]"), jrf::parse_error);
  EXPECT_THROW(parse("\"unterminated"), jrf::parse_error);
  EXPECT_THROW(parse("{} trailing"), jrf::parse_error);
  EXPECT_THROW(parse(""), jrf::parse_error);
}

}  // namespace
}  // namespace jrf::json
