#include "json/writer.hpp"

#include <gtest/gtest.h>

#include "json/parser.hpp"

namespace jrf::json {
namespace {

TEST(JsonWriter, Scalars) {
  EXPECT_EQ(write(value()), "null");
  EXPECT_EQ(write(value(true)), "true");
  EXPECT_EQ(write(value(false)), "false");
  EXPECT_EQ(write(value(util::decimal::parse("35.2"))), "35.2");
  EXPECT_EQ(write(value(std::string("hi"))), "\"hi\"");
}

TEST(JsonWriter, CompactContainers) {
  EXPECT_EQ(write(parse("[1, 2, 3]")), "[1,2,3]");
  EXPECT_EQ(write(parse(R"({ "a" : 1 , "b" : [ ] })")), R"({"a":1,"b":[]})");
  EXPECT_EQ(write(parse("[]")), "[]");
  EXPECT_EQ(write(parse("{}")), "{}");
}

TEST(JsonWriter, EscapesSpecials) {
  EXPECT_EQ(escape("a\"b"), "a\\\"b");
  EXPECT_EQ(escape("a\\b"), "a\\\\b");
  EXPECT_EQ(escape("a\nb"), "a\\nb");
  EXPECT_EQ(escape("tab\there"), "tab\\there");
  EXPECT_EQ(escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonWriter, PreservesMemberOrder) {
  EXPECT_EQ(write(parse(R"({"z":1,"a":2})")), R"({"z":1,"a":2})");
}

TEST(JsonWriter, ListingOneRoundTrip) {
  // The paper's running example (Listing 1), compacted.
  const std::string doc =
      R"({"e":[{"v":"35.2","u":"far","n":"temperature"},)"
      R"({"v":"12","u":"per","n":"humidity"},)"
      R"({"v":"713","u":"per","n":"light"},)"
      R"({"v":"305.01","u":"per","n":"dust"},)"
      R"({"v":"20","u":"per","n":"airquality_raw"}],"bt":1422748800000})";
  EXPECT_EQ(write(parse(doc)), doc);
}

TEST(JsonWriter, WriteToAppends) {
  std::string out = "prefix:";
  write_to(parse("[1]"), out);
  EXPECT_EQ(out, "prefix:[1]");
}

}  // namespace
}  // namespace jrf::json
