#include "lut/mapper.hpp"

#include <gtest/gtest.h>

#include "netlist/builders.hpp"
#include "util/error.hpp"

namespace jrf::lut {
namespace {

using netlist::bus;
using netlist::input_bus;
using netlist::network;
using netlist::node_id;

TEST(LutMapper, EmptyNetwork) {
  network net;
  const report r = map_network(net);
  EXPECT_EQ(r.luts, 0);
  EXPECT_EQ(r.ffs, 0);
  EXPECT_EQ(r.depth, 0);
}

TEST(LutMapper, SingleGateIsOneLut) {
  network net;
  const node_id a = net.input("a");
  const node_id b = net.input("b");
  net.mark_output(net.and_gate(a, b), "y");
  const report r = map_network(net);
  EXPECT_EQ(r.luts, 1);
  EXPECT_EQ(r.depth, 1);
}

TEST(LutMapper, SixInputFunctionFitsOneLut6) {
  network net;
  std::vector<node_id> inputs;
  for (int i = 0; i < 6; ++i) inputs.push_back(net.input("i" + std::to_string(i)));
  net.mark_output(net.and_all(inputs), "y");
  const report r = map_network(net);
  EXPECT_EQ(r.luts, 1);
  EXPECT_EQ(r.depth, 1);
}

TEST(LutMapper, EightInputAndNeedsTwoLuts) {
  network net;
  std::vector<node_id> inputs;
  for (int i = 0; i < 8; ++i) inputs.push_back(net.input("i" + std::to_string(i)));
  net.mark_output(net.and_all(inputs), "y");
  const report r = map_network(net);
  EXPECT_EQ(r.luts, 2);
  EXPECT_EQ(r.depth, 2);
}

TEST(LutMapper, TwelveInputAndNeedsThreeLuts) {
  network net;
  std::vector<node_id> inputs;
  for (int i = 0; i < 12; ++i) inputs.push_back(net.input("i" + std::to_string(i)));
  net.mark_output(net.and_all(inputs), "y");
  const report r = map_network(net);
  // 12 inputs: two LUT6 feeding one combiner (3) is optimal with K=6.
  EXPECT_EQ(r.luts, 3);
  EXPECT_EQ(r.depth, 2);
}

TEST(LutMapper, InverterIsFree) {
  network net;
  const node_id a = net.input("a");
  net.mark_output(net.not_gate(a), "y");
  const report r = map_network(net);
  EXPECT_EQ(r.luts, 0);
}

TEST(LutMapper, InvertersInsideConesAreAbsorbed) {
  network net;
  const node_id a = net.input("a");
  const node_id b = net.input("b");
  const node_id c = net.input("c");
  const node_id y =
      net.or_gate(net.and_gate(net.not_gate(a), b), net.not_gate(c));
  net.mark_output(y, "y");
  const report r = map_network(net);
  EXPECT_EQ(r.luts, 1);  // 3-input function despite the NOT gates
}

TEST(LutMapper, SharedLogicCountedOnce) {
  network net;
  std::vector<node_id> inputs;
  for (int i = 0; i < 6; ++i) inputs.push_back(net.input("i" + std::to_string(i)));
  const node_id shared = net.and_all(inputs);
  const node_id p = net.input("p");
  const node_id q = net.input("q");
  net.mark_output(net.and_gate(shared, p), "y1");
  net.mark_output(net.or_gate(shared, q), "y2");
  const report r = map_network(net);
  EXPECT_EQ(r.luts, 3);  // shared LUT6 + two 2-input combiners
}

TEST(LutMapper, RegistersCountedAsFfs) {
  network net;
  const node_id a = net.input("a");
  const bus regs = netlist::dff_bus(net, "r", 4);
  for (std::size_t i = 0; i < regs.size(); ++i)
    net.connect_dff(regs[i], net.xor_gate(regs[i], a));
  const report r = map_network(net);
  EXPECT_EQ(r.ffs, 4);
  EXPECT_GE(r.luts, 1);
}

TEST(LutMapper, EqualityComparatorCost) {
  // An 8-bit equality against a constant is a single 8-input AND of
  // literals: 2 LUT6s is the known-optimal structural cover.
  network net;
  const bus x = input_bus(net, "x", 8);
  net.mark_output(netlist::eq_const(net, x, 0x5A), "y");
  const report r = map_network(net);
  EXPECT_EQ(r.luts, 2);
}

TEST(LutMapper, Lut4MappingIsLarger) {
  // The same logic mapped for a LUT4 device must not get cheaper.
  network net;
  const bus x = input_bus(net, "x", 8);
  net.mark_output(netlist::eq_const(net, x, 0x5A), "y");
  mapping_options lut6;
  mapping_options lut4;
  lut4.k = 4;
  EXPECT_GE(map_network(net, lut4).luts, map_network(net, lut6).luts);
}

TEST(LutMapper, RejectsSillyK) {
  network net;
  mapping_options options;
  options.k = 1;
  EXPECT_THROW(map_network(net, options), jrf::error);
}

TEST(LutMapper, ConstantOutputCostsNothing) {
  network net;
  net.mark_output(net.constant(true), "y");
  const report r = map_network(net);
  EXPECT_EQ(r.luts, 0);
}

TEST(LutMapper, ReportToString) {
  report r;
  r.luts = 13;
  r.ffs = 5;
  r.depth = 2;
  EXPECT_EQ(r.to_string(), "13 LUTs, 5 FFs, depth 2");
}

TEST(LutMapper, WideOrTreeScalesSubLinearly) {
  // 36 inputs OR-reduced: 6 LUT6 + 1 combiner at K=6.
  network net;
  std::vector<node_id> inputs;
  for (int i = 0; i < 36; ++i) inputs.push_back(net.input("i" + std::to_string(i)));
  net.mark_output(net.or_all(inputs), "y");
  const report r = map_network(net);
  EXPECT_LE(r.luts, 7);
  EXPECT_GE(r.luts, 6);
}

}  // namespace
}  // namespace jrf::lut
