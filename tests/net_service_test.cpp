// net::filter_service suite (tier-1).
//
// The socket front-end end to end, over Unix-domain sockets (no ports, no
// CI flakes; one TCP case covers the ephemeral-port path):
//
//   * decisions arriving over N concurrent connections are byte-identical
//     to a reference sharded run over the same per-shard streams,
//   * the verdict echo comes back in per-shard record order, matching the
//     engine's filter_stream verdicts bit for bit,
//   * a client dropping mid-record still gets every byte it sent before
//     the drop filtered (graceful drain: EOF ends the connection, finish()
//     flushes the trailing partial record - no lost records),
//   * the periodic stats snapshot fires while producers stream.
//
// Clients connect sequentially and wait on connections_accepted() so the
// connection->shard mapping is deterministic (connection i -> shard i).
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/pipeline.hpp"
#include "core/filter_engine.hpp"
#include "data/smartcity.hpp"
#include "data/stream.hpp"
#include "net/service.hpp"
#include "net/socket.hpp"
#include "query/compile.hpp"
#include "query/riotbench.hpp"
#include "system/sharded.hpp"

namespace {

using namespace jrf;

net::endpoint unique_unix_endpoint() {
  static std::atomic<int> counter{0};
  net::endpoint ep;
  ep.unix_path = "/tmp/jrf-net-test-" + std::to_string(::getpid()) + "-" +
                 std::to_string(counter.fetch_add(1)) + ".sock";
  return ep;
}

const std::string& telemetry() {
  static const std::string stream = [] {
    data::smartcity_generator city;
    return city.stream(300);
  }();
  return stream;
}

pipeline_builder sharded_builder(std::size_t shards, std::size_t workers) {
  auto builder = pipeline::make();
  builder.from_query(query::riotbench::qs1())
      .backend(backend_kind::sharded)
      .shards(shards)
      .worker_threads(workers);
  return builder;
}

/// Connect to `service` as its next connection and wait until the
/// acceptor registered it, pinning this client to the next shard.
net::socket_fd connect_and_wait(const net::filter_service& service,
                                std::uint64_t expected_count) {
  net::socket_fd fd = net::connect_to(service.where());
  while (service.connections_accepted() < expected_count)
    std::this_thread::yield();
  return fd;
}

}  // namespace

TEST(NetService, ConcurrentConnectionsMatchReferenceShardedRun) {
  const auto shards = data::shard_records(telemetry(), 3);
  net::service_options options;
  options.listen = unique_unix_endpoint();
  auto service =
      net::filter_service::open(sharded_builder(shards.size(), 2), options);
  ASSERT_TRUE(service.has_value()) << service.error().message;
  EXPECT_EQ(service->shard_count(), shards.size());

  // One client per shard, all streaming concurrently in ragged chunks.
  std::vector<net::socket_fd> clients;
  for (std::size_t c = 0; c < shards.size(); ++c)
    clients.push_back(connect_and_wait(*service, c + 1));
  std::vector<std::thread> senders;
  for (std::size_t c = 0; c < shards.size(); ++c)
    senders.emplace_back([&, c] {
      std::string_view rest = shards[c];
      while (!rest.empty()) {
        const std::size_t step = std::min<std::size_t>(97, rest.size());
        net::write_all(clients[c], rest.substr(0, step));
        rest.remove_prefix(step);
      }
      clients[c].shutdown_write();  // EOF: this shard drains
    });
  for (auto& t : senders) t.join();

  auto result = service->shutdown();
  ASSERT_TRUE(result.has_value()) << result.error().message;

  const core::expr_ptr rf = query::compile_default(query::riotbench::qs1());
  const std::vector<std::string_view> views{shards.begin(), shards.end()};
  system::sharded_filter_system reference(rf, views.size());
  reference.run(views);
  ASSERT_EQ(result->shard_decisions.size(), shards.size());
  for (std::size_t s = 0; s < shards.size(); ++s)
    EXPECT_EQ(result->shard_decisions[s], reference.decisions(s))
        << "shard " << s;

  // Shut-down service rejects a second shutdown with a diagnosis.
  EXPECT_FALSE(service->shutdown().has_value());
}

TEST(NetService, EchoedVerdictsArriveInRecordOrder) {
  net::service_options options;
  options.listen = unique_unix_endpoint();
  options.echo_decisions = true;
  auto service = net::filter_service::open(sharded_builder(1, 0), options);
  ASSERT_TRUE(service.has_value()) << service.error().message;

  net::socket_fd client = connect_and_wait(*service, 1);
  // Read the echo concurrently with the send: with a small kernel buffer
  // a blocked echo write must not deadlock against a blocked record send.
  std::string verdicts;
  std::thread reader([&] {
    char buffer[512];
    while (true) {
      const std::size_t n = net::read_some(client, buffer, sizeof buffer);
      if (n == 0) break;
      verdicts.append(buffer, n);
    }
  });
  net::write_all(client, telemetry());
  client.shutdown_write();
  auto result = service->shutdown();
  ASSERT_TRUE(result.has_value()) << result.error().message;
  reader.join();

  const core::expr_ptr rf = query::compile_default(query::riotbench::qs1());
  const auto reference = core::make_filter_engine(core::engine_kind::chunked,
                                                  rf)
                             ->filter_stream(telemetry());
  std::string expected;
  for (const bool accepted : reference) expected += accepted ? '1' : '0';
  EXPECT_EQ(verdicts, expected);
  EXPECT_EQ(result->records(), reference.size());
}

TEST(NetService, ClientDropMidRecordDrainsEverythingSent) {
  // Graceful drain on an abrupt disconnect: the client vanishes halfway
  // through a record; every byte that reached the service is still
  // filtered, the trailing partial record flushed by finish() - exactly
  // filter_stream over the sent prefix, no lost records.
  const std::string& stream = telemetry();
  const std::size_t cut = stream.size() / 2;  // mid-record with high odds
  const std::string sent = stream.substr(0, cut);

  net::service_options options;
  options.listen = unique_unix_endpoint();
  auto service = net::filter_service::open(sharded_builder(1, 0), options);
  ASSERT_TRUE(service.has_value()) << service.error().message;
  {
    net::socket_fd client = connect_and_wait(*service, 1);
    net::write_all(client, sent);
  }  // full close: the producer sees EOF mid-stream

  auto result = service->shutdown();
  ASSERT_TRUE(result.has_value()) << result.error().message;

  const core::expr_ptr rf = query::compile_default(query::riotbench::qs1());
  EXPECT_EQ(result->decisions,
            core::make_filter_engine(core::engine_kind::chunked, rf)
                ->filter_stream(sent));
}

TEST(NetService, TcpEphemeralPortRoundTrip) {
  net::service_options options;
  options.listen.port = 0;  // ask the kernel
  auto service = net::filter_service::open(sharded_builder(1, 0), options);
  ASSERT_TRUE(service.has_value()) << service.error().message;
  EXPECT_GT(service->where().port, 0) << "ephemeral port not resolved";

  net::socket_fd client = connect_and_wait(*service, 1);
  net::write_all(client, telemetry());
  client.shutdown_write();
  auto result = service->shutdown();
  ASSERT_TRUE(result.has_value()) << result.error().message;

  const core::expr_ptr rf = query::compile_default(query::riotbench::qs1());
  EXPECT_EQ(result->decisions,
            core::make_filter_engine(core::engine_kind::chunked, rf)
                ->filter_stream(telemetry()));
}

TEST(NetService, StatsSnapshotFiresWhileStreaming) {
  std::atomic<std::uint64_t> snapshots{0};
  std::atomic<std::uint64_t> records_seen{0};
  net::service_options options;
  options.listen = unique_unix_endpoint();
  options.stats_period = std::chrono::milliseconds(5);
  options.on_stats = [&](const std::vector<system::shard_stats>& stats) {
    std::uint64_t records = 0;
    for (const auto& s : stats) records += s.records;
    records_seen.store(records);
    snapshots.fetch_add(1);
  };
  auto service = net::filter_service::open(sharded_builder(2, 0), options);
  ASSERT_TRUE(service.has_value()) << service.error().message;

  net::socket_fd client = connect_and_wait(*service, 1);
  net::write_all(client, telemetry());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (snapshots.load() < 2 && std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_GE(snapshots.load(), 2u) << "stats thread never fired";
  client.shutdown_write();
  ASSERT_TRUE(service->shutdown().has_value());
}
