// net::filter_service suite (tier-1).
//
// The socket front-end end to end, over Unix-domain sockets (no ports, no
// CI flakes; one TCP case covers the ephemeral-port path):
//
//   * decisions arriving over N concurrent connections are byte-identical
//     to a reference sharded run over the same per-shard streams,
//   * the verdict echo comes back in per-shard record order, matching the
//     engine's filter_stream verdicts bit for bit,
//   * a client dropping mid-record still gets every byte it sent before
//     the drop filtered (graceful drain: EOF ends the connection, finish()
//     flushes the trailing partial record - no lost records),
//   * the projection echo (echo_projection) sends one tab-separated line
//     of projected field values per ACCEPTED record, interleaved with the
//     verdict/bitmap echoes in per-record order, and a vanished client
//     never wedges the projection line queue,
//   * the periodic stats snapshot fires while producers stream.
//
// Clients connect sequentially and wait on connections_accepted() so the
// connection->shard mapping is deterministic (connection i -> shard i).
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/pipeline.hpp"
#include "core/filter_engine.hpp"
#include "data/smartcity.hpp"
#include "data/stream.hpp"
#include "json/parser.hpp"
#include "json/value.hpp"
#include "net/service.hpp"
#include "net/socket.hpp"
#include "project/paths.hpp"
#include "query/compile.hpp"
#include "query/riotbench.hpp"
#include "system/sharded.hpp"

namespace {

using namespace jrf;

net::endpoint unique_unix_endpoint() {
  static std::atomic<int> counter{0};
  net::endpoint ep;
  ep.unix_path = "/tmp/jrf-net-test-" + std::to_string(::getpid()) + "-" +
                 std::to_string(counter.fetch_add(1)) + ".sock";
  return ep;
}

const std::string& telemetry() {
  static const std::string stream = [] {
    data::smartcity_generator city;
    return city.stream(300);
  }();
  return stream;
}

pipeline_builder sharded_builder(std::size_t shards, std::size_t workers) {
  auto builder = pipeline::make();
  builder.from_query(query::riotbench::qs1())
      .backend(backend_kind::sharded)
      .shards(shards)
      .worker_threads(workers);
  return builder;
}

/// Connect to `service` as its next connection and wait until the
/// acceptor registered it, pinning this client to the next shard.
net::socket_fd connect_and_wait(const net::filter_service& service,
                                std::uint64_t expected_count) {
  net::socket_fd fd = net::connect_to(service.where());
  while (service.connections_accepted() < expected_count)
    std::this_thread::yield();
  return fd;
}

}  // namespace

TEST(NetService, ConcurrentConnectionsMatchReferenceShardedRun) {
  const auto shards = data::shard_records(telemetry(), 3);
  net::service_options options;
  options.listen = unique_unix_endpoint();
  auto service =
      net::filter_service::open(sharded_builder(shards.size(), 2), options);
  ASSERT_TRUE(service.has_value()) << service.error().message;
  EXPECT_EQ(service->shard_count(), shards.size());

  // One client per shard, all streaming concurrently in ragged chunks.
  std::vector<net::socket_fd> clients;
  for (std::size_t c = 0; c < shards.size(); ++c)
    clients.push_back(connect_and_wait(*service, c + 1));
  std::vector<std::thread> senders;
  for (std::size_t c = 0; c < shards.size(); ++c)
    senders.emplace_back([&, c] {
      std::string_view rest = shards[c];
      while (!rest.empty()) {
        const std::size_t step = std::min<std::size_t>(97, rest.size());
        net::write_all(clients[c], rest.substr(0, step));
        rest.remove_prefix(step);
      }
      clients[c].shutdown_write();  // EOF: this shard drains
    });
  for (auto& t : senders) t.join();

  auto result = service->shutdown();
  ASSERT_TRUE(result.has_value()) << result.error().message;

  const core::expr_ptr rf = query::compile_default(query::riotbench::qs1());
  const std::vector<std::string_view> views{shards.begin(), shards.end()};
  system::sharded_filter_system reference(rf, views.size());
  reference.run(views);
  ASSERT_EQ(result->shard_decisions.size(), shards.size());
  for (std::size_t s = 0; s < shards.size(); ++s)
    EXPECT_EQ(result->shard_decisions[s], reference.decisions(s))
        << "shard " << s;

  // Shut-down service rejects a second shutdown with a diagnosis.
  EXPECT_FALSE(service->shutdown().has_value());
}

TEST(NetService, EchoedVerdictsArriveInRecordOrder) {
  net::service_options options;
  options.listen = unique_unix_endpoint();
  options.echo_decisions = true;
  auto service = net::filter_service::open(sharded_builder(1, 0), options);
  ASSERT_TRUE(service.has_value()) << service.error().message;

  net::socket_fd client = connect_and_wait(*service, 1);
  // Read the echo concurrently with the send: with a small kernel buffer
  // a blocked echo write must not deadlock against a blocked record send.
  std::string verdicts;
  std::thread reader([&] {
    char buffer[512];
    while (true) {
      const std::size_t n = net::read_some(client, buffer, sizeof buffer);
      if (n == 0) break;
      verdicts.append(buffer, n);
    }
  });
  net::write_all(client, telemetry());
  client.shutdown_write();
  auto result = service->shutdown();
  ASSERT_TRUE(result.has_value()) << result.error().message;
  reader.join();

  const core::expr_ptr rf = query::compile_default(query::riotbench::qs1());
  const auto reference = core::make_filter_engine(core::engine_kind::chunked,
                                                  rf)
                             ->filter_stream(telemetry());
  std::string expected;
  for (const bool accepted : reference) expected += accepted ? '1' : '0';
  EXPECT_EQ(verdicts, expected);
  EXPECT_EQ(result->records(), reference.size());
}

TEST(NetService, ClientDropMidRecordDrainsEverythingSent) {
  // Graceful drain on an abrupt disconnect: the client vanishes halfway
  // through a record; every byte that reached the service is still
  // filtered, the trailing partial record flushed by finish() - exactly
  // filter_stream over the sent prefix, no lost records.
  const std::string& stream = telemetry();
  const std::size_t cut = stream.size() / 2;  // mid-record with high odds
  const std::string sent = stream.substr(0, cut);

  net::service_options options;
  options.listen = unique_unix_endpoint();
  auto service = net::filter_service::open(sharded_builder(1, 0), options);
  ASSERT_TRUE(service.has_value()) << service.error().message;
  {
    net::socket_fd client = connect_and_wait(*service, 1);
    net::write_all(client, sent);
  }  // full close: the producer sees EOF mid-stream

  auto result = service->shutdown();
  ASSERT_TRUE(result.has_value()) << result.error().message;

  const core::expr_ptr rf = query::compile_default(query::riotbench::qs1());
  EXPECT_EQ(result->decisions,
            core::make_filter_engine(core::engine_kind::chunked, rf)
                ->filter_stream(sent));
}

TEST(NetService, TcpEphemeralPortRoundTrip) {
  net::service_options options;
  options.listen.port = 0;  // ask the kernel
  auto service = net::filter_service::open(sharded_builder(1, 0), options);
  ASSERT_TRUE(service.has_value()) << service.error().message;
  EXPECT_GT(service->where().port, 0) << "ephemeral port not resolved";

  net::socket_fd client = connect_and_wait(*service, 1);
  net::write_all(client, telemetry());
  client.shutdown_write();
  auto result = service->shutdown();
  ASSERT_TRUE(result.has_value()) << result.error().message;

  const core::expr_ptr rf = query::compile_default(query::riotbench::qs1());
  EXPECT_EQ(result->decisions,
            core::make_filter_engine(core::engine_kind::chunked, rf)
                ->filter_stream(telemetry()));
}

TEST(NetService, IdleConnectionTimedOutCountedAndDrained) {
  // The slow-loris guard: a connection that goes quiet past idle_timeout
  // is closed (both directions - the peer observes EOF), counted in
  // connections_idle_closed(), and every byte it delivered before going
  // idle is still filtered.
  const std::string& stream = telemetry();
  const std::size_t cut = stream.size() / 2;
  const std::string sent = stream.substr(0, cut);

  net::service_options options;
  options.listen = unique_unix_endpoint();
  options.idle_timeout = std::chrono::milliseconds(50);
  auto service = net::filter_service::open(sharded_builder(1, 0), options);
  ASSERT_TRUE(service.has_value()) << service.error().message;

  net::socket_fd client = connect_and_wait(*service, 1);
  net::write_all(client, sent);
  // Go quiet, keeping the socket open: the service must cut us loose.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (service->connections_idle_closed() == 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(service->connections_idle_closed(), 1u);

  // The close is visible from the client side as EOF.
  char buffer[64];
  EXPECT_EQ(net::read_some(client, buffer, sizeof buffer), 0u);

  auto result = service->shutdown();
  ASSERT_TRUE(result.has_value()) << result.error().message;
  const core::expr_ptr rf = query::compile_default(query::riotbench::qs1());
  EXPECT_EQ(result->decisions,
            core::make_filter_engine(core::engine_kind::chunked, rf)
                ->filter_stream(sent));
}

TEST(NetService, ActiveConnectionOutlivesIdleTimeout) {
  // A producer that keeps sending - however slowly, as long as each gap
  // stays under the timeout - is never cut.
  net::service_options options;
  options.listen = unique_unix_endpoint();
  options.idle_timeout = std::chrono::milliseconds(250);
  auto service = net::filter_service::open(sharded_builder(1, 0), options);
  ASSERT_TRUE(service.has_value()) << service.error().message;

  net::socket_fd client = connect_and_wait(*service, 1);
  std::string_view rest = telemetry();
  const std::size_t step = rest.size() / 4 + 1;
  while (!rest.empty()) {
    const std::size_t take = std::min(step, rest.size());
    net::write_all(client, rest.substr(0, take));
    rest.remove_prefix(take);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  client.shutdown_write();
  auto result = service->shutdown();
  ASSERT_TRUE(result.has_value()) << result.error().message;
  EXPECT_EQ(service->connections_idle_closed(), 0u);

  const core::expr_ptr rf = query::compile_default(query::riotbench::qs1());
  EXPECT_EQ(result->decisions,
            core::make_filter_engine(core::engine_kind::chunked, rf)
                ->filter_stream(telemetry()));
}

TEST(NetService, ConnectionCapShedsExcessAtAcceptTime) {
  net::service_options options;
  options.listen = unique_unix_endpoint();
  options.max_connections = 1;
  auto service = net::filter_service::open(sharded_builder(1, 0), options);
  ASSERT_TRUE(service.has_value()) << service.error().message;

  net::socket_fd first = connect_and_wait(*service, 1);

  // A second connection is shed before a byte is read: the peer observes
  // an immediate EOF and the refusal is counted. connections_accepted()
  // never moves for a shed socket.
  {
    net::socket_fd excess = net::connect_to(service->where());
    char buffer[8];
    EXPECT_EQ(net::read_some(excess, buffer, sizeof buffer), 0u);
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (service->connections_refused() == 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_GE(service->connections_refused(), 1u);
  EXPECT_EQ(service->connections_accepted(), 1u);

  // The live producer is untouched by the shed...
  net::write_all(first, telemetry());
  first.shutdown_write();

  // ...and once it drains, the slot frees up for a new connection. A shed
  // attempt turns readable immediately (EOF, the service never writes
  // here); an accepted one stays silent, confirmed by the counter.
  net::socket_fd replacement;
  while (!replacement.valid() &&
         std::chrono::steady_clock::now() < deadline) {
    net::socket_fd attempt = net::connect_to(service->where());
    while (std::chrono::steady_clock::now() < deadline) {
      if (net::wait_readable(attempt, 50)) break;  // EOF: shed - reconnect
      if (service->connections_accepted() >= 2) {
        replacement = std::move(attempt);
        break;
      }
    }
  }
  EXPECT_EQ(service->connections_accepted(), 2u)
      << "slot never freed after the first producer drained";

  auto result = service->shutdown();
  ASSERT_TRUE(result.has_value()) << result.error().message;
  const core::expr_ptr rf = query::compile_default(query::riotbench::qs1());
  EXPECT_EQ(result->decisions,
            core::make_filter_engine(core::engine_kind::chunked, rf)
                ->filter_stream(telemetry()));
}

TEST(NetService, QueryBitmapEchoOneLinePerRecord) {
  // The multi-tenant echo protocol: one text line per record, one '1'/'0'
  // per resident query in dense id order, '\n'-terminated. Line length ==
  // query count keeps a reader in sync.
  auto builder = pipeline::make();
  builder.from_query(query::riotbench::qs1())
      .add_query(query::riotbench::qs0())
      .backend(backend_kind::sharded)
      .shards(1)
      .worker_threads(0);

  net::service_options options;
  options.listen = unique_unix_endpoint();
  options.echo_query_bitmaps = true;
  auto service = net::filter_service::open(std::move(builder), options);
  ASSERT_TRUE(service.has_value()) << service.error().message;

  net::socket_fd client = connect_and_wait(*service, 1);
  std::string echoed;
  std::thread reader([&] {
    char buffer[512];
    while (true) {
      const std::size_t n = net::read_some(client, buffer, sizeof buffer);
      if (n == 0) break;
      echoed.append(buffer, n);
    }
  });
  net::write_all(client, telemetry());
  client.shutdown_write();
  auto result = service->shutdown();
  ASSERT_TRUE(result.has_value()) << result.error().message;
  reader.join();

  const auto col0 =
      core::make_filter_engine(
          core::engine_kind::chunked,
          query::compile_default(query::riotbench::qs1()))
          ->filter_stream(telemetry());
  const auto col1 =
      core::make_filter_engine(
          core::engine_kind::chunked,
          query::compile_default(query::riotbench::qs0()))
          ->filter_stream(telemetry());
  std::string expected;
  for (std::size_t r = 0; r < col0.size(); ++r) {
    expected += col0[r] ? '1' : '0';
    expected += col1[r] ? '1' : '0';
    expected += '\n';
  }
  EXPECT_EQ(echoed, expected);
  EXPECT_EQ(result->records(), col0.size());
}

namespace {

/// The SmartCity measurement value of `attr` in one parsed record (SenML:
/// the "v" sibling of the matching "n" inside the "e" array) - the DOM
/// reference for the projection echo's field text. Empty when absent.
std::string senml_value(const json::value& doc, std::string_view attr) {
  const json::value* e = doc.find("e");
  if (e == nullptr || !e->is_array()) return {};
  for (const json::value& m : e->as_array()) {
    const json::value* n = m.find("n");
    if (n == nullptr || !n->is_string() || n->as_string() != attr) continue;
    const json::value* v = m.find("v");
    if (v != nullptr && v->is_string()) return v->as_string();
  }
  return {};
}

/// One expected projection line per set bit of `decisions`: the derived
/// paths' values, tab-separated, '\n'-terminated.
std::string expected_projection_lines(const std::string& stream,
                                      const std::vector<bool>& decisions,
                                      const project::path_set& paths) {
  std::string expected;
  std::string_view rest = stream;
  for (const bool accepted : decisions) {
    const std::size_t nl = rest.find('\n');
    const std::string_view record = rest.substr(0, nl);
    rest.remove_prefix(nl == std::string_view::npos ? rest.size() : nl + 1);
    if (!accepted) continue;
    const json::value doc = json::parse(record);
    for (std::size_t p = 0; p < paths.size(); ++p) {
      if (p > 0) expected.push_back('\t');
      expected += senml_value(doc, paths.at(p).attribute);
    }
    expected.push_back('\n');
  }
  return expected;
}

}  // namespace

TEST(NetService, ProjectionEchoOneLinePerAcceptedRecord) {
  // echo_projection alone: the socket carries nothing but the accepted
  // records' projected fields, one line each, in per-shard record order.
  net::service_options options;
  options.listen = unique_unix_endpoint();
  options.echo_projection = true;
  auto service = net::filter_service::open(sharded_builder(1, 0), options);
  ASSERT_TRUE(service.has_value()) << service.error().message;

  net::socket_fd client = connect_and_wait(*service, 1);
  std::string echoed;
  std::thread reader([&] {
    char buffer[512];
    while (true) {
      const std::size_t n = net::read_some(client, buffer, sizeof buffer);
      if (n == 0) break;
      echoed.append(buffer, n);
    }
  });
  net::write_all(client, telemetry());
  client.shutdown_write();
  auto result = service->shutdown();
  ASSERT_TRUE(result.has_value()) << result.error().message;
  reader.join();

  const auto reference =
      core::make_filter_engine(
          core::engine_kind::chunked,
          query::compile_default(query::riotbench::qs1()))
          ->filter_stream(telemetry());
  EXPECT_EQ(result->decisions, reference);
  const project::path_set paths =
      project::derive_paths({query::riotbench::qs1()});
  EXPECT_EQ(echoed,
            expected_projection_lines(telemetry(), reference, paths));
}

TEST(NetService, ProjectionEchoComposesWithVerdictAndBitmapEcho) {
  // All three echo modes on one socket, two resident queries sharing the
  // five SmartCity paths: per record a '1'/'0' verdict byte, then (when
  // accepted) the projection line, then the bitmap line - the sink order
  // the pipeline guarantees.
  auto builder = pipeline::make();
  builder.from_query(query::riotbench::qs1())
      .add_query(query::riotbench::qs0())
      .backend(backend_kind::sharded)
      .shards(1)
      .worker_threads(0);

  net::service_options options;
  options.listen = unique_unix_endpoint();
  options.echo_decisions = true;
  options.echo_query_bitmaps = true;
  options.echo_projection = true;
  auto service = net::filter_service::open(std::move(builder), options);
  ASSERT_TRUE(service.has_value()) << service.error().message;

  net::socket_fd client = connect_and_wait(*service, 1);
  std::string echoed;
  std::thread reader([&] {
    char buffer[512];
    while (true) {
      const std::size_t n = net::read_some(client, buffer, sizeof buffer);
      if (n == 0) break;
      echoed.append(buffer, n);
    }
  });
  net::write_all(client, telemetry());
  client.shutdown_write();
  auto result = service->shutdown();
  ASSERT_TRUE(result.has_value()) << result.error().message;
  reader.join();

  const auto col0 =
      core::make_filter_engine(
          core::engine_kind::chunked,
          query::compile_default(query::riotbench::qs1()))
          ->filter_stream(telemetry());
  const auto col1 =
      core::make_filter_engine(
          core::engine_kind::chunked,
          query::compile_default(query::riotbench::qs0()))
          ->filter_stream(telemetry());
  const project::path_set paths = project::derive_paths(
      {query::riotbench::qs1(), query::riotbench::qs0()});
  ASSERT_EQ(paths.size(), 5u);  // deduped across the fleet

  std::string expected;
  std::string_view rest = telemetry();
  for (std::size_t r = 0; r < col0.size(); ++r) {
    const std::size_t nl = rest.find('\n');
    const std::string_view record = rest.substr(0, nl);
    rest.remove_prefix(nl == std::string_view::npos ? rest.size() : nl + 1);
    const bool any = col0[r] || col1[r];
    expected += any ? '1' : '0';
    if (any) {
      const json::value doc = json::parse(record);
      for (std::size_t p = 0; p < paths.size(); ++p) {
        if (p > 0) expected.push_back('\t');
        expected += senml_value(doc, paths.at(p).attribute);
      }
      expected.push_back('\n');
    }
    expected += col0[r] ? '1' : '0';
    expected += col1[r] ? '1' : '0';
    expected.push_back('\n');
  }
  EXPECT_EQ(echoed, expected);
  EXPECT_EQ(result->records(), col0.size());
}

TEST(NetService, ProjectionEchoSurvivesClientDroppingMidRecord) {
  // The client vanishes mid-record without ever reading its echo: failed
  // echo writes drop the echo stream (never the ingest), the staged
  // projection lines keep draining (popped whether or not the write
  // lands), and the service still filters every byte that arrived.
  const std::string& stream = telemetry();
  const std::size_t cut = stream.size() / 2;
  const std::string sent = stream.substr(0, cut);

  net::service_options options;
  options.listen = unique_unix_endpoint();
  options.echo_projection = true;
  auto service = net::filter_service::open(sharded_builder(1, 0), options);
  ASSERT_TRUE(service.has_value()) << service.error().message;
  {
    net::socket_fd client = connect_and_wait(*service, 1);
    net::write_all(client, sent);
  }  // full close, echo lines now hit a dead peer

  auto result = service->shutdown();
  ASSERT_TRUE(result.has_value()) << result.error().message;
  const core::expr_ptr rf = query::compile_default(query::riotbench::qs1());
  EXPECT_EQ(result->decisions,
            core::make_filter_engine(core::engine_kind::chunked, rf)
                ->filter_stream(sent));
}

TEST(NetService, StatsSnapshotFiresWhileStreaming) {
  std::atomic<std::uint64_t> snapshots{0};
  std::atomic<std::uint64_t> records_seen{0};
  net::service_options options;
  options.listen = unique_unix_endpoint();
  options.stats_period = std::chrono::milliseconds(5);
  options.on_stats = [&](const std::vector<system::shard_stats>& stats) {
    std::uint64_t records = 0;
    for (const auto& s : stats) records += s.records;
    records_seen.store(records);
    snapshots.fetch_add(1);
  };
  auto service = net::filter_service::open(sharded_builder(2, 0), options);
  ASSERT_TRUE(service.has_value()) << service.error().message;

  net::socket_fd client = connect_and_wait(*service, 1);
  net::write_all(client, telemetry());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (snapshots.load() < 2 && std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_GE(snapshots.load(), 2u) << "stats thread never fired";
  client.shutdown_write();
  ASSERT_TRUE(service->shutdown().has_value());
}
