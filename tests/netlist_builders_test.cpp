#include "netlist/builders.hpp"

#include <gtest/gtest.h>

#include "numrange/builder.hpp"
#include "numrange/range_spec.hpp"
#include "rtl/simulator.hpp"
#include "util/prng.hpp"

namespace jrf::netlist {
namespace {

TEST(Builders, EqConstExhaustive) {
  network net;
  const bus x = input_bus(net, "x", 8);
  const node_id is_42 = eq_const(net, x, 42);
  net.mark_output(is_42, "y");
  rtl::simulator sim(net);
  for (unsigned v = 0; v < 256; ++v) {
    sim.set_bus(x, v);
    sim.settle();
    EXPECT_EQ(sim.value(is_42), v == 42) << v;
  }
}

TEST(Builders, EqConstOutOfRangeIsFalse) {
  network net;
  const bus x = input_bus(net, "x", 4);
  EXPECT_EQ(eq_const(net, x, 16), net.constant(false));
}

TEST(Builders, ComparatorsExhaustive) {
  for (const unsigned bound : {0u, 1u, 42u, 127u, 128u, 200u, 255u}) {
    network net;
    const bus x = input_bus(net, "x", 8);
    const node_id ge = ge_const(net, x, bound);
    const node_id le = le_const(net, x, bound);
    rtl::simulator sim(net);
    for (unsigned v = 0; v < 256; ++v) {
      sim.set_bus(x, v);
      sim.settle();
      EXPECT_EQ(sim.value(ge), v >= bound) << v << " >= " << bound;
      EXPECT_EQ(sim.value(le), v <= bound) << v << " <= " << bound;
    }
  }
}

TEST(Builders, InClassExhaustive) {
  regex::class_set cls;
  cls.add_range('a', 'z');
  cls.add('_');
  cls.add_range('0', '9');
  cls.add(0xFF);
  network net;
  const bus x = input_bus(net, "x", 8);
  const node_id hit = in_class(net, x, cls);
  net.mark_output(hit, "y");
  rtl::simulator sim(net);
  for (unsigned v = 0; v < 256; ++v) {
    sim.set_bus(x, v);
    sim.settle();
    EXPECT_EQ(sim.value(hit), cls.contains(static_cast<unsigned char>(v))) << v;
  }
}

TEST(Builders, InClassFullAndEmpty) {
  network net;
  const bus x = input_bus(net, "x", 8);
  EXPECT_EQ(in_class(net, x, regex::class_set::all()), net.constant(true));
  EXPECT_EQ(in_class(net, x, regex::class_set{}), net.constant(false));
}

TEST(Builders, IncrementWraps) {
  network net;
  const bus x = input_bus(net, "x", 4);
  const bus y = increment(net, x);
  rtl::simulator sim(net);
  for (unsigned v = 0; v < 16; ++v) {
    sim.set_bus(x, v);
    sim.settle();
    EXPECT_EQ(sim.bus_value(y), (v + 1) % 16) << v;
  }
}

TEST(Builders, MatchCounterCountsAndResets) {
  network net;
  const node_id advance = net.input("advance");
  const bus counter = match_counter(net, advance, 4, "cnt");
  rtl::simulator sim(net);
  sim.reset();
  sim.set_input(advance, true);
  for (unsigned i = 1; i <= 5; ++i) {
    sim.step();
    EXPECT_EQ(sim.bus_value(counter), i);
  }
  sim.set_input(advance, false);
  sim.step();
  EXPECT_EQ(sim.bus_value(counter), 0u);
  sim.set_input(advance, true);
  sim.step();
  EXPECT_EQ(sim.bus_value(counter), 1u);
}

TEST(Builders, MatchCounterWrapsAtWidth) {
  network net;
  const node_id advance = net.input("advance");
  const bus counter = match_counter(net, advance, 3, "cnt");
  rtl::simulator sim(net);
  sim.reset();
  sim.set_input(advance, true);
  for (int i = 0; i < 8; ++i) sim.step();
  EXPECT_EQ(sim.bus_value(counter), 0u);  // 8 mod 2^3
}

TEST(Builders, ShiftBytesDelaysStream) {
  network net;
  const bus byte = input_bus(net, "b", 8);
  const auto stages = shift_bytes(net, byte, 3, net.constant(false), "sh");
  rtl::simulator sim(net);
  sim.reset();
  const unsigned stream[] = {0x11, 0x22, 0x33, 0x44, 0x55};
  for (unsigned i = 0; i < 5; ++i) {
    sim.set_bus(byte, stream[i]);
    sim.step();
    // After the step, stage[k] holds the byte from k cycles ago.
    EXPECT_EQ(sim.bus_value(stages[0]), stream[i]);
    if (i >= 1) {
      EXPECT_EQ(sim.bus_value(stages[1]), stream[i - 1]);
    }
    if (i >= 2) {
      EXPECT_EQ(sim.bus_value(stages[2]), stream[i - 2]);
    }
  }
}

TEST(Builders, DfaCircuitMatchesSoftwareDfa) {
  // The Figure 2 automaton (i >= 35) stepped in hardware against software.
  const auto spec = numrange::range_spec::at_least("35", numrange::numeric_kind::integer);
  numrange::build_options options;
  options.exponent_escape = false;
  const regex::dfa d = numrange::build_token_dfa(spec, options);

  network net;
  const bus byte = input_bus(net, "byte", 8);
  const node_id advance = net.input("advance");
  const node_id reset = net.input("reset");
  const auto circuit = elaborate_dfa(net, d, byte, advance, reset, "dfa");
  net.mark_output(circuit.accepting, "accepting");

  rtl::simulator sim(net);
  util::prng r(77);
  for (int trial = 0; trial < 200; ++trial) {
    const std::string token = r.ascii(r.below(6), "0123456789");
    sim.reset();
    sim.set_input(reset, false);
    sim.set_input(advance, true);
    int state = d.start();
    for (char c : token) {
      sim.set_bus(byte, static_cast<unsigned char>(c));
      sim.step();
      state = d.step(state, static_cast<unsigned char>(c));
    }
    sim.settle();
    EXPECT_EQ(sim.value(circuit.accepting), d.accepting(state)) << token;
    EXPECT_EQ(sim.value(circuit.accepting), d.run(token)) << token;
  }
}

TEST(Builders, DfaCircuitResetReturnsToStart) {
  const auto spec = numrange::range_spec::integer_range("12", "49");
  const regex::dfa d = numrange::build_token_dfa(spec);

  network net;
  const bus byte = input_bus(net, "byte", 8);
  const node_id advance = net.input("advance");
  const node_id reset = net.input("reset");
  const auto circuit =
      elaborate_dfa(net, d, byte, advance, reset, "dfa", dfa_encoding::binary);

  rtl::simulator sim(net);
  sim.reset();
  sim.set_input(advance, true);
  sim.set_input(reset, false);
  for (char c : std::string("99")) {  // drive into a non-start state
    sim.set_bus(byte, static_cast<unsigned char>(c));
    sim.step();
  }
  EXPECT_NE(sim.bus_value(circuit.state), 0u);
  sim.set_input(reset, true);
  sim.step();
  EXPECT_EQ(sim.bus_value(circuit.state), 0u);  // start state encoded as 0
}

TEST(Builders, DfaCircuitHoldsWithoutAdvance) {
  const auto spec = numrange::range_spec::integer_range("12", "49");
  const regex::dfa d = numrange::build_token_dfa(spec);

  network net;
  const bus byte = input_bus(net, "byte", 8);
  const node_id advance = net.input("advance");
  const node_id reset = net.input("reset");
  const auto circuit =
      elaborate_dfa(net, d, byte, advance, reset, "dfa", dfa_encoding::binary);

  rtl::simulator sim(net);
  sim.reset();
  sim.set_input(reset, false);
  sim.set_input(advance, true);
  sim.set_bus(byte, '1');
  sim.step();
  const auto state_after_1 = sim.bus_value(circuit.state);
  sim.set_input(advance, false);
  sim.set_bus(byte, '9');
  sim.step();
  EXPECT_EQ(sim.bus_value(circuit.state), state_after_1);
}

TEST(Builders, OneHotAndBinaryEncodingsAgree) {
  const auto spec = numrange::range_spec::real_range("0.7", "35.1");
  const regex::dfa d = numrange::build_token_dfa(spec);

  network net;
  const bus byte = input_bus(net, "byte", 8);
  const node_id advance = net.input("advance");
  const node_id reset = net.input("reset");
  const auto onehot = elaborate_dfa(net, d, byte, advance, reset, "oh",
                                    dfa_encoding::one_hot);
  const auto binary = elaborate_dfa(net, d, byte, advance, reset, "bin",
                                    dfa_encoding::binary);

  rtl::simulator sim(net);
  util::prng r(99);
  for (int trial = 0; trial < 100; ++trial) {
    sim.reset();
    sim.set_input(advance, true);
    sim.set_input(reset, false);
    const std::string token = r.ascii(r.below(8), "0123456789.-+eE");
    for (char c : token) {
      sim.set_bus(byte, static_cast<unsigned char>(c));
      sim.step();
      sim.settle();
      ASSERT_EQ(sim.value(onehot.accepting), sim.value(binary.accepting))
          << token;
      for (int st = 0; st < d.state_count(); ++st)
        ASSERT_EQ(sim.value(onehot.active[static_cast<std::size_t>(st)]),
                  sim.value(binary.active[static_cast<std::size_t>(st)]))
            << token << " state " << st;
    }
    // Reset from an arbitrary state returns both to start.
    sim.set_input(reset, true);
    sim.step();
    sim.settle();
    ASSERT_TRUE(sim.value(onehot.active[static_cast<std::size_t>(d.start())]));
    ASSERT_TRUE(sim.value(binary.active[static_cast<std::size_t>(d.start())]));
  }
}

TEST(Builders, ShiftBytesClearsOnReset) {
  network net;
  const bus byte = input_bus(net, "b", 8);
  const node_id reset = net.input("rst");
  const auto stages = shift_bytes(net, byte, 2, reset, "sh");
  rtl::simulator sim(net);
  sim.reset();
  sim.set_input(reset, false);
  sim.set_bus(byte, 0xAB);
  sim.step();
  sim.step();
  EXPECT_EQ(sim.bus_value(stages[1]), 0xABu);
  sim.set_input(reset, true);
  sim.step();
  EXPECT_EQ(sim.bus_value(stages[0]), 0u);
  EXPECT_EQ(sim.bus_value(stages[1]), 0u);
}

}  // namespace
}  // namespace jrf::netlist
