#include "netlist/network.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace jrf::netlist {
namespace {

TEST(Network, ConstantsAreShared) {
  network net;
  EXPECT_EQ(net.constant(true), net.constant(true));
  EXPECT_EQ(net.constant(false), net.constant(false));
  EXPECT_NE(net.constant(true), net.constant(false));
}

TEST(Network, StructuralHashingDedupes) {
  network net;
  const node_id a = net.input("a");
  const node_id b = net.input("b");
  EXPECT_EQ(net.and_gate(a, b), net.and_gate(a, b));
  EXPECT_EQ(net.and_gate(a, b), net.and_gate(b, a));  // commutative canonical
  EXPECT_EQ(net.or_gate(a, b), net.or_gate(b, a));
  EXPECT_EQ(net.xor_gate(a, b), net.xor_gate(b, a));
  EXPECT_NE(net.and_gate(a, b), net.or_gate(a, b));
}

TEST(Network, ConstantFolding) {
  network net;
  const node_id a = net.input("a");
  const node_id t = net.constant(true);
  const node_id f = net.constant(false);
  EXPECT_EQ(net.and_gate(a, f), f);
  EXPECT_EQ(net.and_gate(a, t), a);
  EXPECT_EQ(net.or_gate(a, t), t);
  EXPECT_EQ(net.or_gate(a, f), a);
  EXPECT_EQ(net.xor_gate(a, f), a);
  EXPECT_EQ(net.xor_gate(a, t), net.not_gate(a));
  EXPECT_EQ(net.and_gate(a, a), a);
  EXPECT_EQ(net.xor_gate(a, a), f);
  EXPECT_EQ(net.not_gate(net.not_gate(a)), a);
  EXPECT_EQ(net.and_gate(a, net.not_gate(a)), f);
  EXPECT_EQ(net.or_gate(a, net.not_gate(a)), t);
}

TEST(Network, MuxFolding) {
  network net;
  const node_id s = net.input("s");
  const node_id a = net.input("a");
  const node_id b = net.input("b");
  EXPECT_EQ(net.mux(net.constant(true), a, b), a);
  EXPECT_EQ(net.mux(net.constant(false), a, b), b);
  EXPECT_EQ(net.mux(s, a, a), a);
  EXPECT_EQ(net.mux(s, net.constant(true), net.constant(false)), s);
  EXPECT_EQ(net.mux(s, net.constant(false), net.constant(true)), net.not_gate(s));
}

TEST(Network, EvaluateCombinational) {
  network net;
  const node_id a = net.input("a");
  const node_id b = net.input("b");
  const node_id c = net.input("c");
  const node_id y = net.or_gate(net.and_gate(a, b), net.not_gate(c));
  net.mark_output(y, "y");
  for (int bits = 0; bits < 8; ++bits) {
    std::vector<bool> values(net.size());
    values[a] = bits & 1;
    values[b] = bits & 2;
    values[c] = bits & 4;
    evaluate(net, values);
    const bool expected = ((bits & 1) && (bits & 2)) || !(bits & 4);
    EXPECT_EQ(values[y], expected) << bits;
  }
}

TEST(Network, AndAllOrAll) {
  network net;
  std::vector<node_id> inputs;
  for (int i = 0; i < 5; ++i) inputs.push_back(net.input("i" + std::to_string(i)));
  const node_id all = net.and_all(inputs);
  const node_id any = net.or_all(inputs);
  for (int bits = 0; bits < 32; ++bits) {
    std::vector<bool> values(net.size());
    for (int i = 0; i < 5; ++i) values[inputs[static_cast<std::size_t>(i)]] = (bits >> i) & 1;
    evaluate(net, values);
    EXPECT_EQ(values[all], bits == 31);
    EXPECT_EQ(values[any], bits != 0);
  }
}

TEST(Network, EmptyReductions) {
  network net;
  EXPECT_EQ(net.and_all({}), net.constant(true));
  EXPECT_EQ(net.or_all({}), net.constant(false));
}

TEST(Network, RegistersTrackedAndConnected) {
  network net;
  const node_id d = net.dff("r");
  const node_id a = net.input("a");
  net.connect_dff(d, net.xor_gate(d, a));
  ASSERT_EQ(net.registers().size(), 1u);
  EXPECT_EQ(net.registers()[0], d);
  EXPECT_THROW(net.connect_dff(a, d), jrf::error);
}

TEST(Network, TopoOrderRespectsDependencies) {
  network net;
  const node_id a = net.input("a");
  const node_id b = net.input("b");
  const node_id x = net.and_gate(a, b);
  const node_id y = net.or_gate(x, a);
  net.mark_output(y, "y");
  const auto order = net.topo_order();
  const auto pos = [&](node_id n) {
    for (std::size_t i = 0; i < order.size(); ++i)
      if (order[i] == n) return static_cast<long>(i);
    return -1l;
  };
  EXPECT_LT(pos(x), pos(y));
}

TEST(Network, SequentialLoopIsNotACombinationalCycle) {
  network net;
  const node_id reg = net.dff("r");
  const node_id inverted = net.not_gate(reg);
  net.connect_dff(reg, inverted);  // toggle flop
  EXPECT_NO_THROW(net.topo_order());
}

TEST(Network, StatsMentionsGateKinds) {
  network net;
  const node_id a = net.input("a");
  const node_id b = net.input("b");
  net.mark_output(net.and_gate(a, b), "y");
  const std::string stats = net.stats();
  EXPECT_NE(stats.find("input=2"), std::string::npos);
  EXPECT_NE(stats.find("and=1"), std::string::npos);
}

}  // namespace
}  // namespace jrf::netlist
