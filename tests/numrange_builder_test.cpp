#include "numrange/builder.hpp"

#include <gtest/gtest.h>

#include "numrange/oracle.hpp"
#include "util/error.hpp"
#include "util/prng.hpp"

namespace jrf::numrange {
namespace {

using util::decimal;

std::string random_token(util::prng& r) {
  // Biased toward plausible numeric shapes but includes adversarial junk.
  const std::size_t len = 1 + r.below(8);
  return r.ascii(len, "0123456789.+-eE");
}

range_spec random_int_spec(util::prng& r) {
  std::int64_t a = r.range_i64(-500, 500);
  std::int64_t b = r.range_i64(-500, 500);
  if (a > b) std::swap(a, b);
  return {numeric_kind::integer, decimal(a), decimal(b)};
}

range_spec random_real_spec(util::prng& r) {
  auto draw = [&r] {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld.%02llu",
                  static_cast<long long>(r.range_i64(-300, 300)),
                  static_cast<unsigned long long>(r.below(100)));
    return decimal::parse(buf);
  };
  decimal a = draw();
  decimal b = draw();
  if (b < a) std::swap(a, b);
  return {numeric_kind::real, a, b};
}

TEST(NumRange, CeilFloorToInteger) {
  EXPECT_EQ(ceil_to_integer(decimal::parse("12.3")).to_string(), "13");
  EXPECT_EQ(ceil_to_integer(decimal::parse("12")).to_string(), "12");
  EXPECT_EQ(ceil_to_integer(decimal::parse("-12.3")).to_string(), "-12");
  EXPECT_EQ(ceil_to_integer(decimal::parse("0.5")).to_string(), "1");
  EXPECT_EQ(ceil_to_integer(decimal::parse("-0.5")).to_string(), "0");
  EXPECT_EQ(ceil_to_integer(decimal::parse("9.9")).to_string(), "10");
  EXPECT_EQ(floor_to_integer(decimal::parse("12.3")).to_string(), "12");
  EXPECT_EQ(floor_to_integer(decimal::parse("-12.3")).to_string(), "-13");
  EXPECT_EQ(floor_to_integer(decimal::parse("-0.5")).to_string(), "-1");
  EXPECT_EQ(floor_to_integer(decimal::parse("99.9")).to_string(), "99");
  EXPECT_EQ(floor_to_integer(decimal::parse("-99.9")).to_string(), "-100");
}

TEST(NumRange, Figure2LowerBound35) {
  // Paper Figure 2: i >= 35 without the exponent escape.
  build_options options;
  options.exponent_escape = false;
  options.allow_leading_zeros = false;
  const auto spec = range_spec::at_least("35", numeric_kind::integer);
  const auto d = build_token_dfa(spec, options);
  EXPECT_TRUE(d.run("35"));
  EXPECT_TRUE(d.run("36"));
  EXPECT_TRUE(d.run("40"));
  EXPECT_TRUE(d.run("99"));
  EXPECT_TRUE(d.run("100"));
  EXPECT_TRUE(d.run("1422748800000"));
  EXPECT_FALSE(d.run("34"));
  EXPECT_FALSE(d.run("0"));
  EXPECT_FALSE(d.run("9"));
  EXPECT_FALSE(d.run(""));
  EXPECT_FALSE(d.run("3"));
  EXPECT_FALSE(d.run("35.5"));  // integer kind rejects fractional syntax
  // Figure 2 shows states s0..s3 plus accept; allow the dead state on top.
  int live = 0;
  for (int s = 0; s < d.state_count(); ++s)
    if (!d.dead(s)) ++live;
  EXPECT_LE(live, 5);
}

TEST(NumRange, IntegerRangeTwoSided) {
  const auto spec = range_spec::integer_range("12", "49");
  const auto d = build_token_dfa(spec);
  for (int v = -20; v <= 70; ++v) {
    EXPECT_EQ(d.run(std::to_string(v)), v >= 12 && v <= 49) << v;
  }
}

TEST(NumRange, RealRangeRunningExample) {
  // Q0 from the paper: 0.7 <= f <= 35.1 on the temperature attribute.
  const auto spec = range_spec::real_range("0.7", "35.1");
  const auto d = build_token_dfa(spec);
  EXPECT_TRUE(d.run("0.7"));
  EXPECT_TRUE(d.run("35.1"));
  EXPECT_TRUE(d.run("12"));
  EXPECT_TRUE(d.run("20"));
  EXPECT_TRUE(d.run("1"));
  EXPECT_TRUE(d.run("35"));
  EXPECT_TRUE(d.run("35.09"));
  EXPECT_FALSE(d.run("35.2"));   // the Listing 1 temperature value
  EXPECT_FALSE(d.run("0.69"));
  EXPECT_FALSE(d.run("0.6"));
  EXPECT_FALSE(d.run("713"));
  EXPECT_FALSE(d.run("305.01"));
  EXPECT_FALSE(d.run("-5"));
  EXPECT_FALSE(d.run("0"));
}

TEST(NumRange, NegativeLowerBound) {
  // QS1 temperature: -12.5 <= f <= 43.1.
  const auto spec = range_spec::real_range("-12.5", "43.1");
  const auto d = build_token_dfa(spec);
  EXPECT_TRUE(d.run("-12.5"));
  EXPECT_TRUE(d.run("-12"));
  EXPECT_TRUE(d.run("-0.5"));
  EXPECT_TRUE(d.run("-0"));
  EXPECT_TRUE(d.run("0"));
  EXPECT_TRUE(d.run("43.1"));
  EXPECT_TRUE(d.run("43.09"));
  EXPECT_FALSE(d.run("-12.51"));
  EXPECT_FALSE(d.run("-13"));
  EXPECT_FALSE(d.run("43.2"));
  EXPECT_FALSE(d.run("44"));
}

TEST(NumRange, BothBoundsNegative) {
  const auto spec = range_spec::integer_range("-49", "-12");
  const auto d = build_token_dfa(spec);
  for (int v = -70; v <= 20; ++v) {
    EXPECT_EQ(d.run(std::to_string(v)), v >= -49 && v <= -12) << v;
  }
  EXPECT_FALSE(d.run("12"));
  EXPECT_FALSE(d.run("0"));
  EXPECT_FALSE(d.run("-0"));
}

TEST(NumRange, OneSidedUpperBound) {
  const auto spec = range_spec::at_most("35", numeric_kind::integer);
  const auto d = build_token_dfa(spec);
  EXPECT_TRUE(d.run("35"));
  EXPECT_TRUE(d.run("0"));
  EXPECT_TRUE(d.run("-1000000"));
  EXPECT_FALSE(d.run("36"));
  EXPECT_FALSE(d.run("100"));
}

TEST(NumRange, ExponentEscapeAcceptsAnyExponentNumber) {
  const auto spec = range_spec::integer_range("12", "49");
  const auto d = build_token_dfa(spec);
  // All exponent-formatted numbers are accepted, even out of range.
  EXPECT_TRUE(d.run("2.1e3"));
  EXPECT_TRUE(d.run("1e+1"));
  EXPECT_TRUE(d.run("100e-1"));
  EXPECT_TRUE(d.run("9E9"));
  EXPECT_TRUE(d.run("-1e3"));
  EXPECT_TRUE(d.run("1e"));
  // But an 'e' without any digit before it is not a number.
  EXPECT_FALSE(d.run("e3"));
  EXPECT_FALSE(d.run("+e3"));
  EXPECT_FALSE(d.run(".e3"));
}

TEST(NumRange, ExponentEscapeCanBeDisabled) {
  build_options options;
  options.exponent_escape = false;
  const auto spec = range_spec::integer_range("12", "49");
  const auto d = build_token_dfa(spec, options);
  EXPECT_FALSE(d.run("2.1e3"));
  EXPECT_FALSE(d.run("1e"));
  EXPECT_TRUE(d.run("13"));
}

TEST(NumRange, LeadingZeros) {
  const auto spec = range_spec::integer_range("12", "49");
  const auto with = build_token_dfa(spec);  // default: allowed
  EXPECT_TRUE(with.run("012"));
  EXPECT_TRUE(with.run("0049"));
  EXPECT_FALSE(with.run("0050"));
  build_options strict;
  strict.allow_leading_zeros = false;
  const auto without = build_token_dfa(spec, strict);
  EXPECT_FALSE(without.run("012"));
  EXPECT_TRUE(without.run("12"));
}

TEST(NumRange, ZeroBounds) {
  const auto spec = range_spec::integer_range("0", "0");
  const auto d = build_token_dfa(spec);
  EXPECT_TRUE(d.run("0"));
  EXPECT_TRUE(d.run("00"));
  EXPECT_TRUE(d.run("-0"));
  EXPECT_FALSE(d.run("1"));
  EXPECT_FALSE(d.run("-1"));
}

TEST(NumRange, RealZeroToOne) {
  const auto spec = range_spec::real_range("0", "1");
  const auto d = build_token_dfa(spec);
  EXPECT_TRUE(d.run("0"));
  EXPECT_TRUE(d.run("0.5"));
  EXPECT_TRUE(d.run("0.999"));
  EXPECT_TRUE(d.run("1"));
  EXPECT_TRUE(d.run("1.0"));
  EXPECT_TRUE(d.run("1.000"));
  EXPECT_FALSE(d.run("1.001"));
  EXPECT_FALSE(d.run("2"));
  EXPECT_FALSE(d.run("-0.1"));
}

TEST(NumRange, FractionalBoundsBelowOne) {
  const auto spec = range_spec::real_range("0.25", "0.75");
  const auto d = build_token_dfa(spec);
  EXPECT_TRUE(d.run("0.25"));
  EXPECT_TRUE(d.run("0.5"));
  EXPECT_TRUE(d.run("0.75"));
  EXPECT_TRUE(d.run("0.750"));
  EXPECT_FALSE(d.run("0.751"));
  EXPECT_FALSE(d.run("0.2"));
  EXPECT_FALSE(d.run("0.249"));
  EXPECT_FALSE(d.run("1"));
  EXPECT_FALSE(d.run("0"));
}

TEST(NumRange, EmptyIntervalMatchesNothingPlain) {
  build_options options;
  options.exponent_escape = false;
  range_spec spec{numeric_kind::integer, decimal::parse("0.2"), decimal::parse("0.8")};
  const auto d = build_token_dfa(spec, options);
  for (const char* token : {"0", "1", "-1", "0.5"}) EXPECT_FALSE(d.run(token)) << token;
}

TEST(NumRange, RequiresAtLeastOneBound) {
  range_spec spec;
  EXPECT_THROW(build_token_dfa(spec), jrf::error);
}

TEST(NumRange, QS0DustRange) {
  // 83.36 <= f <= 3322.67, the widest-format bound in the paper's queries.
  const auto spec = range_spec::real_range("83.36", "3322.67");
  const auto d = build_token_dfa(spec);
  EXPECT_TRUE(d.run("83.36"));
  EXPECT_TRUE(d.run("305.01"));
  EXPECT_TRUE(d.run("3322.67"));
  EXPECT_TRUE(d.run("100"));
  EXPECT_FALSE(d.run("83.35"));
  EXPECT_FALSE(d.run("83.3"));
  EXPECT_FALSE(d.run("3322.68"));
  EXPECT_FALSE(d.run("3323"));
  EXPECT_FALSE(d.run("12"));
}

TEST(NumRange, RandomizedIntegerAgainstOracle) {
  util::prng r(101);
  for (int trial = 0; trial < 30; ++trial) {
    const auto spec = random_int_spec(r);
    const auto d = build_token_dfa(spec);
    for (int i = 0; i < 400; ++i) {
      const std::string token = random_token(r);
      EXPECT_EQ(d.run(token), token_matches(token, spec))
          << spec.to_string() << " on '" << token << "'";
    }
    // Systematic integer scan around the bounds.
    for (std::int64_t v = -520; v <= 520; v += 7) {
      const std::string token = std::to_string(v);
      EXPECT_EQ(d.run(token), token_matches(token, spec))
          << spec.to_string() << " on " << token;
    }
  }
}

TEST(NumRange, RandomizedRealAgainstOracle) {
  util::prng r(202);
  for (int trial = 0; trial < 20; ++trial) {
    const auto spec = random_real_spec(r);
    const auto d = build_token_dfa(spec);
    for (int i = 0; i < 400; ++i) {
      const std::string token = random_token(r);
      EXPECT_EQ(d.run(token), token_matches(token, spec))
          << spec.to_string() << " on '" << token << "'";
    }
    for (int i = 0; i < 200; ++i) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%lld.%02llu",
                    static_cast<long long>(r.range_i64(-310, 310)),
                    static_cast<unsigned long long>(r.below(100)));
      EXPECT_EQ(d.run(buf), token_matches(buf, spec))
          << spec.to_string() << " on " << buf;
    }
  }
}

TEST(NumRange, RandomizedOptionCombinations) {
  util::prng r(303);
  for (bool exponent : {false, true}) {
    for (bool zeros : {false, true}) {
      build_options options;
      options.exponent_escape = exponent;
      options.allow_leading_zeros = zeros;
      const auto spec = range_spec::real_range("-5.5", "7.25");
      const auto d = build_token_dfa(spec, options);
      for (int i = 0; i < 600; ++i) {
        const std::string token = random_token(r);
        EXPECT_EQ(d.run(token), token_matches(token, spec, options))
            << "exp=" << exponent << " zeros=" << zeros << " '" << token << "'";
      }
    }
  }
}

TEST(NumRange, DerivationTraceForFigure2) {
  build_options options;
  options.exponent_escape = false;
  options.allow_leading_zeros = false;
  const auto spec = range_spec::at_least("35", numeric_kind::integer);
  const auto trace = derive(spec, options);
  ASSERT_GE(trace.steps.size(), 3u);
  // Step 1.1 checks the first digit: [4-9]...
  EXPECT_NE(trace.steps[0].pattern.find("[4-9]"), std::string::npos);
  // Step 1.2 adds 3[5-9].
  EXPECT_NE(trace.steps[1].pattern.find("3[5-9]"), std::string::npos);
  // Final step reports the DFA.
  EXPECT_NE(trace.steps.back().description.find("Step 2"), std::string::npos);
  EXPECT_TRUE(trace.automaton.run("35"));
  EXPECT_FALSE(trace.automaton.run("34"));
}

TEST(NumRange, SpecToString) {
  EXPECT_EQ(range_spec::integer_range("12", "49").to_string(), "v(12 <= i <= 49)");
  EXPECT_EQ(range_spec::real_range("0.7", "35.1").to_string(), "v(0.7 <= f <= 35.1)");
  EXPECT_EQ(range_spec::at_least("35", numeric_kind::integer).to_string(), "v(i >= 35)");
  EXPECT_EQ(range_spec::at_most("9.5", numeric_kind::real).to_string(), "v(f <= 9.5)");
}

TEST(NumRange, TokenByteClassification) {
  for (char c = '0'; c <= '9'; ++c) EXPECT_TRUE(is_token_byte(static_cast<unsigned char>(c)));
  for (char c : {'.', '+', '-', 'e', 'E'}) EXPECT_TRUE(is_token_byte(static_cast<unsigned char>(c)));
  for (char c : {'"', ',', '{', '}', '[', ']', ':', ' ', 'a', 'f'})
    EXPECT_FALSE(is_token_byte(static_cast<unsigned char>(c))) << c;
}

}  // namespace
}  // namespace jrf::numrange
