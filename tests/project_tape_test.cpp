// Projection subsystem suite (tier-1).
//
// Ground truth is the strict DOM parser: for every record the extractor's
// field refs - and the tape/columnar accessors built on them - must agree
// byte-for-byte with a reference extraction over json::parse, implementing
// exactly the matching semantics tape.hpp documents:
//   flat  - first member whose key equals the attribute, in document
//           (pre-order) byte order, any depth;
//   senml - first object to COMPLETE that carries both an "n" member
//           string-equal to the attribute and a "v" member (innermost
//           first; duplicate "v" members: last one wins).
// The sweep runs the riotbench queries over both generated datasets across
// every available SIMD tier, then the facade wiring: records straddling
// offer() chunks, escaped strings (including \uXXXX), and the projection
// batches every backend returns through run_result.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "api/pipeline.hpp"
#include "core/bitmaps.hpp"
#include "core/simd.hpp"
#include "data/smartcity.hpp"
#include "data/taxi.hpp"
#include "json/parser.hpp"
#include "json/value.hpp"
#include "project/columns.hpp"
#include "project/paths.hpp"
#include "project/tape.hpp"
#include "query/riotbench.hpp"
#include "util/decimal.hpp"

namespace {

using namespace jrf;

// --- reference extraction over the DOM --------------------------------

// Flat: linear document order - each key is checked as it is encountered,
// descending into member values between sibling keys.
const json::value* find_flat(const json::value& v, std::string_view attr) {
  if (v.is_object()) {
    for (const auto& [key, val] : v.as_object()) {
      if (key == attr) return &val;
      if (const json::value* hit = find_flat(val, attr)) return hit;
    }
  } else if (v.is_array()) {
    for (const json::value& e : v.as_array())
      if (const json::value* hit = find_flat(e, attr)) return hit;
  }
  return nullptr;
}

// SenML: first object to complete (post-order) with a matching "n" and a
// "v"; the claimed value is the LAST "v" member of that object.
const json::value* find_senml(const json::value& v, std::string_view attr) {
  if (v.is_object()) {
    for (const auto& [key, val] : v.as_object())
      if (const json::value* hit = find_senml(val, attr)) return hit;
    bool name_matches = false;
    const json::value* measurement = nullptr;
    for (const auto& [key, val] : v.as_object()) {
      if (key == "n" && val.is_string() && val.as_string() == attr)
        name_matches = true;
      if (key == "v") measurement = &val;
    }
    if (name_matches && measurement != nullptr) return measurement;
  } else if (v.is_array()) {
    for (const json::value& e : v.as_array())
      if (const json::value* hit = find_senml(e, attr)) return hit;
  }
  return nullptr;
}

const json::value* reference_find(const json::value& doc,
                                  const project::path_target& target) {
  return target.model == query::data_model::flat
             ? find_flat(doc, target.attribute)
             : find_senml(doc, target.attribute);
}

project::value_type expected_type(const json::value& v) {
  switch (v.type()) {
    case json::kind::null: return project::value_type::null;
    case json::kind::boolean: return project::value_type::boolean;
    case json::kind::number: return project::value_type::number;
    case json::kind::string: return project::value_type::string;
    case json::kind::array: return project::value_type::array;
    case json::kind::object: return project::value_type::object;
  }
  return project::value_type::missing;
}

// One tape row against the DOM reference: type, then the value - strings
// byte-identical post-unescape, numbers by exact decimal equality, and
// containers by re-parsing the raw slice into an equal DOM.
void expect_row_matches(const project::tape& t, std::size_t row,
                        const project::path_set& paths,
                        const json::value& doc, const std::string& where) {
  for (std::size_t p = 0; p < paths.size(); ++p) {
    const project::tape_entry& e = t.entry(row, p);
    const json::value* ref = reference_find(doc, paths.at(p));
    const std::string ctx =
        where + " path=" + paths.at(p).to_string() + " row=" +
        std::to_string(row);
    if (ref == nullptr) {
      EXPECT_EQ(e.type, project::value_type::missing) << ctx;
      EXPECT_TRUE(t.raw(e).empty()) << ctx;
      continue;
    }
    ASSERT_EQ(e.type, expected_type(*ref)) << ctx;
    switch (e.type) {
      case project::value_type::string:
        EXPECT_EQ(t.text(e), ref->as_string()) << ctx;
        break;
      case project::value_type::number:
        EXPECT_EQ(util::decimal::parse(t.raw(e)), ref->as_number()) << ctx;
        break;
      case project::value_type::boolean:
        EXPECT_EQ(t.raw(e) == "true", ref->as_bool()) << ctx;
        break;
      case project::value_type::null:
        EXPECT_EQ(t.raw(e), "null") << ctx;
        break;
      case project::value_type::array:
      case project::value_type::object:
        EXPECT_EQ(json::parse(t.raw(e)), *ref) << ctx;
        break;
      case project::value_type::missing:
        break;  // unreachable, handled above
    }
    // The numeric view mirrors json::value::numeric (numbers plus numeric
    // strings - SenML's quoted decimals).
    double got = 0.0;
    const bool numeric = t.number(e, got);
    const std::optional<util::decimal> want = ref->numeric();
    ASSERT_EQ(numeric, want.has_value()) << ctx;
    if (numeric) {
      EXPECT_DOUBLE_EQ(got, want->to_double()) << ctx;
    }
  }
}

std::vector<std::string_view> split_records(std::string_view stream) {
  std::vector<std::string_view> records;
  while (!stream.empty()) {
    const std::size_t nl = stream.find('\n');
    records.push_back(stream.substr(0, nl));
    if (nl == std::string_view::npos) break;
    stream.remove_prefix(nl + 1);
  }
  return records;
}

struct workload {
  std::string name;
  query::query q;
  std::string stream;
};

const std::vector<workload>& workloads() {
  static const std::vector<workload> cases = [] {
    std::vector<workload> out;
    data::smartcity_generator city;
    out.push_back({"qs0_smartcity", query::riotbench::qs0(), city.stream(300)});
    out.push_back({"qs1_smartcity", query::riotbench::qs1(), city.stream(300)});
    data::taxi_generator taxi;
    out.push_back({"qt_taxi", query::riotbench::qt(), taxi.stream(300)});
    return out;
  }();
  return cases;
}

}  // namespace

// ---------------------------------------------------------------------------
// path_set derivation.

TEST(ProjectPaths, DeriveDedupsAcrossQueries) {
  // QS0 and QS1 range over the same five SenML attributes: the fleet's
  // shared path set carries each once, ordinals in first-seen order.
  const project::path_set paths = project::derive_paths(
      {query::riotbench::qs0(), query::riotbench::qs1()});
  EXPECT_EQ(paths.size(), 5u);
  EXPECT_EQ(paths.at(0).attribute, "temperature");
  EXPECT_EQ(paths.at(0).model, query::data_model::senml);
  project::path_set expected;
  for (const query::predicate& p : query::riotbench::qs0().predicates())
    expected.add(query::data_model::senml, p.attribute);
  EXPECT_EQ(paths, expected);
}

TEST(ProjectPaths, RejectsEmptyAttribute) {
  project::path_set paths;
  EXPECT_THROW(paths.add(query::data_model::flat, ""), jrf::error);
}

// ---------------------------------------------------------------------------
// Extractor / tape / columns vs the DOM reference, every SIMD tier.

TEST(ProjectTape, MatchesParserOnRiotbenchWorkloads) {
  for (const workload& w : workloads()) {
    const project::path_set paths = project::derive_paths({w.q});
    const std::vector<std::string_view> records = split_records(w.stream);
    for (const core::simd::simd_level level : core::simd::available_levels()) {
      // One pass over the whole stream, records extracted at their true
      // offsets - exactly how the filter engine hands records to the hook.
      core::bitmap_pass pass;
      pass.compute(reinterpret_cast<const unsigned char*>(w.stream.data()),
                   w.stream.size(), '\n', {}, level);
      project::extractor ex(paths, level);
      project::tape t(paths.size());
      std::vector<project::field_ref> refs(paths.size());
      const std::string where =
          w.name + " simd=" + core::simd::to_string(level);
      std::size_t offset = 0;
      std::vector<json::value> docs;
      for (const std::string_view rec : records) {
        const auto* bytes =
            reinterpret_cast<const unsigned char*>(rec.data());
        ex.extract({bytes, rec.size()}, pass, offset, refs.data());
        t.add_record(docs.size(), refs, {bytes, rec.size()});
        docs.push_back(json::parse(rec));
        offset += rec.size() + 1;
      }
      ASSERT_EQ(t.rows(), records.size()) << where;
      for (std::size_t r = 0; r < t.rows(); ++r)
        expect_row_matches(t, r, paths, docs[r], where);

      // The columnar pivot preserves every row: presence, type, numeric
      // view and text all round-trip through column_builder.
      project::column_builder builder(paths);
      builder.append(t);
      const project::column_batch batch = builder.flush(7);
      ASSERT_EQ(batch.rows(), t.rows()) << where;
      EXPECT_EQ(batch.shard, 7u) << where;
      ASSERT_EQ(batch.columns.size(), paths.size()) << where;
      for (std::size_t r = 0; r < batch.rows(); ++r) {
        EXPECT_EQ(batch.records[r], r) << where;
        for (std::size_t p = 0; p < paths.size(); ++p) {
          const project::column_data& col = batch.columns[p];
          const project::tape_entry& e = t.entry(r, p);
          EXPECT_EQ(col.name, paths.at(p).attribute) << where;
          EXPECT_EQ(col.types[r], e.type) << where;
          EXPECT_EQ(col.present_at(r),
                    e.type != project::value_type::missing)
              << where;
          EXPECT_EQ(col.text_at(r), t.text(e)) << where;
          double num = 0.0;
          const bool numeric = t.number(e, num);
          EXPECT_EQ(col.numeric_at(r), numeric) << where;
          if (numeric) {
            EXPECT_DOUBLE_EQ(col.numbers[r], num) << where;
          }
        }
      }
    }
  }
}

TEST(ProjectTape, EscapedStringsUnescapeLikeParser) {
  // Escapes in keys and values: quotes, backslashes, control escapes,
  // \uXXXX (2- and 3-byte UTF-8), and a senml "n" that only matches after
  // unescaping.
  const std::vector<std::string> flat_records = {
      R"({"msg":"line1\nline2","path":"C:\\dir\\f.txt"})",
      R"({"quote":"she said \"hi\"","tab":"a\tb"})",
      R"({"unicode":"caf\u00e9 \u20ac","slash":"a\/b"})",
      R"({"outer":{"msg":"nested \"deep\""},"msg":"shadowed"})",
  };
  project::path_set fpaths;
  fpaths.add(query::data_model::flat, "msg");
  fpaths.add(query::data_model::flat, "path");
  fpaths.add(query::data_model::flat, "quote");
  fpaths.add(query::data_model::flat, "tab");
  fpaths.add(query::data_model::flat, "unicode");
  fpaths.add(query::data_model::flat, "slash");
  const std::string senml_record =
      R"({"e":[{"n":"temp\u00e9rature","v":"21.5","u":"\u00b0C"}]})";
  project::path_set spaths;
  spaths.add(query::data_model::senml, "temp\xc3\xa9rature");

  for (const core::simd::simd_level level : core::simd::available_levels()) {
    const std::string where =
        std::string("simd=") + core::simd::to_string(level);
    for (const std::string& rec : flat_records) {
      core::bitmap_pass pass;
      pass.compute(reinterpret_cast<const unsigned char*>(rec.data()),
                   rec.size(), '\n', {}, level);
      project::extractor ex(fpaths, level);
      project::tape t(fpaths.size());
      std::vector<project::field_ref> refs(fpaths.size());
      const auto* bytes = reinterpret_cast<const unsigned char*>(rec.data());
      ex.extract({bytes, rec.size()}, pass, 0, refs.data());
      t.add_record(0, refs, {bytes, rec.size()});
      expect_row_matches(t, 0, fpaths, json::parse(rec), where + " " + rec);
    }
    // "outer.msg" resolves to the NESTED occurrence: it is first in byte
    // order even though a shallower "msg" follows.
    {
      const std::string& rec = flat_records.back();
      core::bitmap_pass pass;
      pass.compute(reinterpret_cast<const unsigned char*>(rec.data()),
                   rec.size(), '\n', {}, level);
      project::extractor ex(fpaths, level);
      std::vector<project::field_ref> refs(fpaths.size());
      const auto* bytes = reinterpret_cast<const unsigned char*>(rec.data());
      ex.extract({bytes, rec.size()}, pass, 0, refs.data());
      const std::string_view raw(rec.data() + refs[0].offset,
                                 refs[0].length);
      EXPECT_EQ(raw, "\"nested \\\"deep\\\"\"") << where;
    }
    {
      core::bitmap_pass pass;
      pass.compute(
          reinterpret_cast<const unsigned char*>(senml_record.data()),
          senml_record.size(), '\n', {}, level);
      project::extractor ex(spaths, level);
      project::tape t(spaths.size());
      std::vector<project::field_ref> refs(spaths.size());
      const auto* bytes =
          reinterpret_cast<const unsigned char*>(senml_record.data());
      ex.extract({bytes, senml_record.size()}, pass, 0, refs.data());
      t.add_record(0, refs, {bytes, senml_record.size()});
      expect_row_matches(t, 0, spaths, json::parse(senml_record),
                         where + " senml-escaped-n");
    }
  }
}

TEST(ProjectTape, SenmlClaimsInnermostCompletionAndLastV) {
  // The outer object matches too, but the nested measurement completes
  // first; its duplicate "v" resolves to the last one.
  const std::string rec =
      R"({"n":"temperature","v":1,"inner":{"n":"temperature","v":2,"v":3}})";
  project::path_set paths;
  paths.add(query::data_model::senml, "temperature");
  core::bitmap_pass pass;
  pass.compute(reinterpret_cast<const unsigned char*>(rec.data()), rec.size(),
               '\n', {}, core::simd::simd_level::automatic);
  project::extractor ex(paths);
  std::vector<project::field_ref> refs(paths.size());
  const auto* bytes = reinterpret_cast<const unsigned char*>(rec.data());
  ex.extract({bytes, rec.size()}, pass, 0, refs.data());
  ASSERT_EQ(refs[0].type, project::value_type::number);
  EXPECT_EQ(std::string_view(rec.data() + refs[0].offset, refs[0].length),
            "3");
  // The DOM reference agrees - the semantics are shared, not coincidental.
  const json::value* ref = find_senml(json::parse(rec), "temperature");
  ASSERT_NE(ref, nullptr);
  EXPECT_EQ(ref->as_number(), util::decimal::parse("3"));
}

// ---------------------------------------------------------------------------
// Facade wiring: chunk-straddling records and run_result::projection.

namespace {

// Run one workload through a facade backend with projection on and check
// every batch row against the DOM reference.
void expect_projection_matches(const workload& w, run_result& result,
                               const std::string& where) {
  const project::path_set paths = project::derive_paths({w.q});
  const std::vector<std::string_view> records = split_records(w.stream);
  // Accepted per-shard record index -> document (single-stream backends:
  // the per-shard index IS the stream index).
  std::size_t rows = 0;
  for (const project::column_batch& batch : result.projection) {
    EXPECT_EQ(batch.columns.size(), paths.size()) << where;
    for (std::size_t r = 0; r < batch.rows(); ++r) {
      const std::uint64_t index = batch.records[r];
      ASSERT_LT(index, records.size()) << where;
      ASSERT_LT(index, result.shard_decisions[batch.shard].size()) << where;
      EXPECT_TRUE(result.shard_decisions[batch.shard][index]) << where;
      const json::value doc = json::parse(records[index]);
      for (std::size_t p = 0; p < paths.size(); ++p) {
        const json::value* ref = reference_find(doc, paths.at(p));
        const project::column_data& col = batch.columns[p];
        const std::string ctx = where + " record=" + std::to_string(index) +
                                " path=" + paths.at(p).to_string();
        ASSERT_EQ(col.present_at(r), ref != nullptr) << ctx;
        if (ref == nullptr) continue;
        if (ref->is_string()) {
          EXPECT_EQ(col.text_at(r), ref->as_string()) << ctx;
        }
        const std::optional<util::decimal> want = ref->numeric();
        ASSERT_EQ(col.numeric_at(r), want.has_value()) << ctx;
        if (want) {
          EXPECT_DOUBLE_EQ(col.numbers[r], want->to_double()) << ctx;
        }
      }
      ++rows;
    }
  }
  EXPECT_EQ(rows, static_cast<std::size_t>(result.accepted())) << where;
}

}  // namespace

TEST(ProjectPipeline, ChunkStraddlingRecordsProjectExactly) {
  // Offers far smaller than a record: every record straddles chunk
  // boundaries, so extraction runs on the engine's reassembled carry with
  // a record-local bitmap pass.
  for (const workload& w : workloads()) {
    auto built = pipeline::make()
                     .from_query(w.q)
                     .backend(backend_kind::chunked)
                     .project()
                     .projection_batch_rows(3)  // exercise partial flushes
                     .build();
    ASSERT_TRUE(built.has_value()) << built.error().message;
    std::string_view rest = w.stream;
    while (!rest.empty()) {
      const std::size_t step = std::min<std::size_t>(13, rest.size());
      ASSERT_TRUE(built->offer(rest.substr(0, step)).has_value());
      rest.remove_prefix(step);
    }
    auto result = built->finish();
    ASSERT_TRUE(result.has_value()) << result.error().message;
    expect_projection_matches(w, *result, w.name + " straddle");
  }
}

TEST(ProjectPipeline, AllBackendsReturnIdenticalProjection) {
  for (const workload& w : workloads()) {
    for (const backend_kind kind :
         {backend_kind::chunked, backend_kind::system,
          backend_kind::sharded}) {
      auto built = pipeline::make()
                       .from_query(w.q)
                       .backend(kind)
                       .input(w.stream)
                       .project()
                       .build();
      ASSERT_TRUE(built.has_value()) << built.error().message;
      auto result = built->run();
      ASSERT_TRUE(result.has_value()) << result.error().message;
      expect_projection_matches(w, *result,
                                w.name + " backend=" +
                                    std::to_string(static_cast<int>(kind)));
    }
  }
}

TEST(ProjectPipeline, SinkStreamsBatchesInsteadOfRetaining) {
  const workload& w = workloads().front();
  std::vector<project::column_batch> streamed;
  auto built = pipeline::make()
                   .from_query(w.q)
                   .backend(backend_kind::chunked)
                   .projection_batch_rows(5)
                   .on_projection([&](std::size_t shard,
                                      const project::column_batch& batch) {
                     EXPECT_EQ(shard, 0u);
                     streamed.push_back(batch);
                   })
                   .input(w.stream)
                   .build();
  ASSERT_TRUE(built.has_value()) << built.error().message;
  auto result = built->run();
  ASSERT_TRUE(result.has_value()) << result.error().message;
  EXPECT_TRUE(result->projection.empty());  // the sink consumed the batches
  std::size_t rows = 0;
  for (const project::column_batch& b : streamed) {
    EXPECT_LE(b.rows(), 5u);
    rows += b.rows();
  }
  EXPECT_EQ(rows, static_cast<std::size_t>(result->accepted()));
  // Re-run without the sink: the retained batches carry the same rows.
  run_result retained = *pipeline::make()
                             .from_query(w.q)
                             .backend(backend_kind::chunked)
                             .project()
                             .input(w.stream)
                             .build()
                             ->run();
  expect_projection_matches(w, retained, w.name + " retained");
}

TEST(ProjectPipeline, ScalarBackendsAreRejectedAtBuild) {
  const workload& w = workloads().front();
  auto scalar_backend = pipeline::make()
                            .from_query(w.q)
                            .backend(backend_kind::scalar)
                            .project()
                            .build();
  EXPECT_FALSE(scalar_backend.has_value());
  auto scalar_engine = pipeline::make()
                           .from_query(w.q)
                           .backend(backend_kind::system)
                           .engine(core::engine_kind::scalar)
                           .project()
                           .build();
  EXPECT_FALSE(scalar_engine.has_value());
  auto zero_batch = pipeline::make()
                        .from_query(w.q)
                        .project()
                        .projection_batch_rows(0)
                        .build();
  EXPECT_FALSE(zero_batch.has_value());
}
