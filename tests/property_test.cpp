// End-to-end property suite over generated datasets: the invariants of
// DESIGN.md section 7, checked for every query and a sweep of raw-filter
// configurations. The central one is the paper's correctness contract:
// a raw filter may pass extra records but NEVER drops a true match.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/raw_filter.hpp"
#include "data/smartcity.hpp"
#include "data/taxi.hpp"
#include "query/compile.hpp"
#include "query/eval.hpp"
#include "query/riotbench.hpp"

namespace jrf::query {
namespace {

struct workload {
  std::string name;
  query q;
  std::string stream;
};

const std::vector<workload>& workloads() {
  static const std::vector<workload> w = [] {
    std::vector<workload> out;
    data::smartcity_generator smartcity(0xAB);
    const std::string sc = smartcity.stream(3000);
    data::taxi_generator taxi(0xCD);
    const std::string tx = taxi.stream(3000);
    out.push_back({"QS0", riotbench::qs0(), sc});
    out.push_back({"QS1", riotbench::qs1(), sc});
    out.push_back({"QT", riotbench::qt(), tx});
    return out;
  }();
  return w;
}

using config_case = std::tuple<std::string, attribute_mode, int>;

class NoFalseNegatives : public ::testing::TestWithParam<config_case> {};

TEST_P(NoFalseNegatives, RawFilterNeverDropsTrueMatch) {
  const auto [label, mode, block] = GetParam();
  for (const workload& w : workloads()) {
    const std::vector<attribute_choice> choices(
        w.q.predicates().size(),
        attribute_choice{mode, core::string_technique::substring, block});
    core::raw_filter rf(compile(w.q, choices));
    const auto decisions = rf.filter_stream(w.stream);
    const auto labels = label_stream(w.q, w.stream);
    ASSERT_EQ(decisions.size(), labels.size());
    std::size_t false_negatives = 0;
    for (std::size_t i = 0; i < labels.size(); ++i)
      if (labels[i] && !decisions[i]) ++false_negatives;
    EXPECT_EQ(false_negatives, 0u) << w.name << " " << label;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, NoFalseNegatives,
    ::testing::Values(
        config_case{"grouped_b1", attribute_mode::grouped, 1},
        config_case{"grouped_b2", attribute_mode::grouped, 2},
        config_case{"grouped_bN", attribute_mode::grouped, block_full},
        config_case{"flat_b1", attribute_mode::flat_and, 1},
        config_case{"flat_b2", attribute_mode::flat_and, 2},
        config_case{"string_only_b1", attribute_mode::string_only, 1},
        config_case{"value_only", attribute_mode::value_only, 1}),
    [](const auto& info) { return std::get<0>(info.param); });

TEST(FilterDominance, GroupedIsNeverLooserThanQueryAndTighterThanFlat) {
  // grouped accepts a subset of flat AND accepts a superset of exact.
  for (const workload& w : workloads()) {
    const std::size_t n = w.q.predicates().size();
    const std::vector<attribute_choice> grouped(
        n, {attribute_mode::grouped, core::string_technique::substring, 1});
    const std::vector<attribute_choice> flat(
        n, {attribute_mode::flat_and, core::string_technique::substring, 1});
    core::raw_filter grouped_rf(compile(w.q, grouped));
    core::raw_filter flat_rf(compile(w.q, flat));
    const auto grouped_d = grouped_rf.filter_stream(w.stream);
    const auto flat_d = flat_rf.filter_stream(w.stream);
    const auto labels = label_stream(w.q, w.stream);
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (labels[i]) {
        EXPECT_TRUE(grouped_d[i]) << w.name << " record " << i;
      }
      if (grouped_d[i]) {
        EXPECT_TRUE(flat_d[i]) << w.name << " record " << i;
      }
    }
  }
}

TEST(FilterDominance, SmallerBlockAcceptsSuperset) {
  // sB fires wherever s(B+1) fires: lowering B only loosens the filter.
  for (const workload& w : workloads()) {
    const std::size_t n = w.q.predicates().size();
    for (const int tighter : {2, 3}) {
      const std::vector<attribute_choice> loose(
          n, {attribute_mode::string_only, core::string_technique::substring,
              tighter - 1});
      const std::vector<attribute_choice> tight(
          n, {attribute_mode::string_only, core::string_technique::substring,
              tighter});
      core::raw_filter loose_rf(compile(w.q, loose));
      core::raw_filter tight_rf(compile(w.q, tight));
      const auto loose_d = loose_rf.filter_stream(w.stream);
      const auto tight_d = tight_rf.filter_stream(w.stream);
      for (std::size_t i = 0; i < tight_d.size(); ++i) {
        if (tight_d[i]) {
          EXPECT_TRUE(loose_d[i]) << w.name << " record " << i;
        }
      }
    }
  }
}

TEST(FilterDominance, OmittingPredicatesLoosensTheFilter) {
  for (const workload& w : workloads()) {
    const std::size_t n = w.q.predicates().size();
    std::vector<attribute_choice> all(
        n, {attribute_mode::grouped, core::string_technique::substring, 1});
    std::vector<attribute_choice> fewer = all;
    fewer[0].mode = attribute_mode::omit;
    fewer[2].mode = attribute_mode::omit;
    core::raw_filter all_rf(compile(w.q, all));
    core::raw_filter fewer_rf(compile(w.q, fewer));
    const auto all_d = all_rf.filter_stream(w.stream);
    const auto fewer_d = fewer_rf.filter_stream(w.stream);
    for (std::size_t i = 0; i < all_d.size(); ++i) {
      if (all_d[i]) {
        EXPECT_TRUE(fewer_d[i]) << w.name << " record " << i;
      }
    }
  }
}

}  // namespace
}  // namespace jrf::query
