// Tests for the query front-end: parsers, exact evaluation, RF compiler.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "json/parser.hpp"
#include "core/raw_filter.hpp"
#include "query/compile.hpp"
#include "query/eval.hpp"
#include "query/ir.hpp"
#include "query/parse.hpp"
#include "query/riotbench.hpp"
#include "util/error.hpp"

namespace jrf::query {
namespace {

// -------------------------------------------------------------------- parse

TEST(ParseFilterExpression, TableVIIIQueryRoundTrips) {
  const query q = riotbench::qs0();
  EXPECT_EQ(q.name, "QS0");
  EXPECT_EQ(q.model, data_model::senml);
  ASSERT_TRUE(q.is_flat_conjunction());
  const auto preds = q.predicates();
  ASSERT_EQ(preds.size(), 5u);
  EXPECT_EQ(preds[0].attribute, "temperature");
  EXPECT_EQ(preds[0].to_string(), "(0.7 <= \"temperature\" <= 35.1)");
  EXPECT_EQ(preds[4].attribute, "airquality_raw");
}

TEST(ParseFilterExpression, IntegerBoundsYieldIntegerKind) {
  const query q = parse_filter_expression(R"((12 <= "a" <= 49))");
  EXPECT_EQ(q.predicates()[0].range.kind, numrange::numeric_kind::integer);
  const query r = parse_filter_expression(R"((0.7 <= "a" <= 35.1))");
  EXPECT_EQ(r.predicates()[0].range.kind, numrange::numeric_kind::real);
}

TEST(ParseFilterExpression, OneSidedComparisons) {
  const query q = parse_filter_expression(R"(("a" >= 5) AND ("b" <= 3.5))");
  const auto preds = q.predicates();
  ASSERT_EQ(preds.size(), 2u);
  EXPECT_TRUE(preds[0].range.lo && !preds[0].range.hi);
  EXPECT_TRUE(!preds[1].range.lo && preds[1].range.hi);
}

TEST(ParseFilterExpression, StringEquality) {
  const query q = parse_filter_expression(R"(("payment_type" == "CSH"))");
  const auto preds = q.predicates();
  ASSERT_EQ(preds.size(), 1u);
  EXPECT_EQ(preds[0].k, predicate::kind::string_equals);
  EXPECT_EQ(preds[0].text, "CSH");
}

TEST(ParseFilterExpression, OrOfAnds) {
  const query q = parse_filter_expression(
      R"((("a" >= 1) AND ("b" >= 2)) OR ("c" >= 3))");
  EXPECT_EQ(q.root->k, query_node::kind::disjunction);
  EXPECT_FALSE(q.is_flat_conjunction());
  EXPECT_EQ(q.predicates().size(), 3u);
}

TEST(ParseFilterExpression, NegativeBounds) {
  const query q = parse_filter_expression(R"((-12.5 <= "t" <= 43.1))");
  EXPECT_EQ(q.predicates()[0].range.lo->to_string(), "-12.5");
}

TEST(ParseFilterExpression, MalformedInputThrows) {
  EXPECT_THROW(parse_filter_expression("(0.7 <= temperature <= 35.1)"), parse_error);
  EXPECT_THROW(parse_filter_expression(R"(("a" >= ))"), parse_error);
  EXPECT_THROW(parse_filter_expression(R"(("a" >= 1) AND)"), parse_error);
  EXPECT_THROW(parse_filter_expression(R"(("a" >= 1) trailing)"), parse_error);
}

TEST(ParseJsonPath, Listing2) {
  const query q = riotbench::q0();
  EXPECT_EQ(q.model, data_model::senml);
  const auto preds = q.predicates();
  ASSERT_EQ(preds.size(), 1u);
  EXPECT_EQ(preds[0].attribute, "temperature");
  EXPECT_EQ(preds[0].range.lo->to_string(), "0.7");
  EXPECT_EQ(preds[0].range.hi->to_string(), "35.1");
}

TEST(ParseJsonPath, ExistenceOnly) {
  const query q = parse_jsonpath(R"($.e[?(@.n=="light")])");
  const auto preds = q.predicates();
  ASSERT_EQ(preds.size(), 1u);
  EXPECT_FALSE(preds[0].range.lo);
  EXPECT_FALSE(preds[0].range.hi);
}

TEST(ParseJsonPath, MalformedThrows) {
  EXPECT_THROW(parse_jsonpath("$.e[?(@.v >= 1)]"), parse_error);   // no @.n
  EXPECT_THROW(parse_jsonpath("$.e[?(@.x == 1)]"), parse_error);   // bad field
  EXPECT_THROW(parse_jsonpath("e[?(@.n==\"a\")]"), parse_error);   // no $
}

// --------------------------------------------------------------------- eval

const char* kListing1 =
    R"({"e":[)"
    R"({"v":"35.2","u":"far","n":"temperature"},)"
    R"({"v":"12","u":"per","n":"humidity"},)"
    R"({"v":"713","u":"per","n":"light"},)"
    R"({"v":"305.01","u":"per","n":"dust"},)"
    R"({"v":"20","u":"per","n":"airquality_raw"})"
    R"(],"bt":1422748800000})";

TEST(Eval, RunningExampleRejectsListing1) {
  // Q0 wants temperature in [0.7, 35.1]; Listing 1 has 35.2.
  EXPECT_FALSE(eval_record(riotbench::q0(), kListing1));
}

TEST(Eval, RunningExampleAcceptsInRange) {
  const std::string record =
      R"({"e":[{"v":"21.5","u":"far","n":"temperature"}],"bt":1})";
  EXPECT_TRUE(eval_record(riotbench::q0(), record));
}

TEST(Eval, SenmlValueMayBeUnquoted) {
  const std::string record = R"({"e":[{"n":"temperature","v":21.5}]})";
  EXPECT_TRUE(eval_record(riotbench::q0(), record));
}

TEST(Eval, SenmlNameValueMustShareObject) {
  const std::string record =
      R"({"e":[{"n":"temperature","v":"99"},{"n":"x","v":"21.5"}]})";
  EXPECT_FALSE(eval_record(riotbench::q0(), record));
}

TEST(Eval, FlatModelKeyLookup) {
  const query q = parse_filter_expression(R"((2.50 <= "tolls_amount" <= 18.00))");
  EXPECT_TRUE(eval_record(q, R"({"tolls_amount":5.0,"total_amount":30.0})"));
  EXPECT_FALSE(eval_record(q, R"({"total_amount":5.0})"));
  EXPECT_FALSE(eval_record(q, R"({"tolls_amount":0.0})"));
}

TEST(Eval, FlatModelSearchesNestedObjects) {
  const query q = parse_filter_expression(R"((1 <= "favourites_count" <= 100))");
  EXPECT_TRUE(eval_record(q, R"({"user":{"favourites_count":5}})"));
}

TEST(Eval, MissingAttributeFailsRangePredicate) {
  const query q = riotbench::qt();
  EXPECT_FALSE(eval_record(q, R"({"fare_amount":10.0})"));
}

TEST(Eval, StringEqualityPredicate) {
  const query q = parse_filter_expression(R"(("payment_type" == "CSH"))");
  EXPECT_TRUE(eval_record(q, R"({"payment_type":"CSH"})"));
  EXPECT_FALSE(eval_record(q, R"({"payment_type":"CRD"})"));
  EXPECT_FALSE(eval_record(q, R"({"payment_type":7})"));
}

TEST(Eval, MalformedRecordIsFalse) {
  EXPECT_FALSE(eval_record(riotbench::qt(), "{not json"));
}

TEST(Eval, DisjunctionSemantics) {
  const query q = parse_filter_expression(
      R"(("a" >= 10) OR ("b" >= 10))");
  EXPECT_TRUE(eval_record(q, R"({"a":20})"));
  EXPECT_TRUE(eval_record(q, R"({"b":20})"));
  EXPECT_FALSE(eval_record(q, R"({"a":1,"b":1})"));
}

TEST(Eval, LabelStreamAndSelectivity) {
  const query q = parse_filter_expression(R"(("a" >= 10))");
  const auto labels = label_stream(q, "{\"a\":20}\n{\"a\":1}\n{\"a\":30}\n");
  ASSERT_EQ(labels.size(), 3u);
  EXPECT_DOUBLE_EQ(selectivity(labels), 2.0 / 3.0);
}

// ------------------------------------------------------------------ compile

TEST(Compile, DefaultIsGroupedConjunction) {
  const core::expr_ptr rf = compile_default(riotbench::qs0());
  // Five scope groups under one conjunction.
  EXPECT_EQ(rf->kind, core::expr_kind::conjunction);
  EXPECT_EQ(rf->children.size(), 5u);
  for (const auto& child : rf->children) {
    EXPECT_EQ(child->kind, core::expr_kind::group);
    EXPECT_EQ(child->group, core::group_kind::scope);
  }
  EXPECT_EQ(rf->primitive_count(), 10);
}

TEST(Compile, FlatModelUsesPairGroups) {
  const core::expr_ptr rf = compile_default(riotbench::qt());
  EXPECT_EQ(rf->children[0]->group, core::group_kind::pair);
}

TEST(Compile, PaperNotationForRunningExample) {
  const core::expr_ptr rf = compile_default(riotbench::q0());
  EXPECT_EQ(rf->to_string(), "{ s1(\"temperature\") & v(0.7 <= f <= 35.1) }");
}

TEST(Compile, OmitDropsAttribute) {
  const query q = riotbench::qs0();
  std::vector<attribute_choice> choices(5);
  for (auto& c : choices) c.mode = attribute_mode::omit;
  choices[2].mode = attribute_mode::value_only;  // keep light only
  const core::expr_ptr rf = compile(q, choices);
  EXPECT_EQ(rf->to_string(), "v(0 <= i <= 5153)");
}

TEST(Compile, AllOmittedThrows) {
  const query q = riotbench::qs0();
  const std::vector<attribute_choice> choices(
      5, attribute_choice{attribute_mode::omit, core::string_technique::substring, 1});
  EXPECT_THROW(compile(q, choices), error);
}

TEST(Compile, ChoiceCountMismatchThrows) {
  EXPECT_THROW(compile(riotbench::qs0(), std::vector<attribute_choice>(3)), error);
}

TEST(Compile, BlockFullResolvesToNeedleLength) {
  const query q = parse_jsonpath(R"($.e[?(@.n=="light" & @.v >= 1)])");
  const std::vector<attribute_choice> choices(
      1, attribute_choice{attribute_mode::string_only,
                          core::string_technique::substring, block_full});
  const core::expr_ptr rf = compile(q, choices);
  EXPECT_EQ(rf->to_string(), "s5(\"light\")");
}

TEST(Compile, StringEqualityGroupsKeyAndText) {
  const query q = parse_filter_expression(R"(("payment_type" == "CSH"))");
  const std::vector<attribute_choice> choices(
      1, attribute_choice{attribute_mode::grouped,
                          core::string_technique::substring, 2});
  const core::expr_ptr rf = compile(q, choices);
  EXPECT_EQ(rf->to_string(), "{ s2(\"payment_type\") : s2(\"CSH\") }");
}

TEST(Compile, LabelsForDesignSpaceListings) {
  EXPECT_EQ((attribute_choice{attribute_mode::omit,
                              core::string_technique::substring, 1})
                .label(),
            "-");
  EXPECT_EQ((attribute_choice{attribute_mode::grouped,
                              core::string_technique::substring, 2})
                .label(),
            "g2");
  EXPECT_EQ((attribute_choice{attribute_mode::flat_and,
                              core::string_technique::substring, block_full})
                .label(),
            "fN");
  EXPECT_EQ((attribute_choice{attribute_mode::value_only,
                              core::string_technique::substring, 1})
                .label(),
            "v");
  EXPECT_EQ((attribute_choice{attribute_mode::string_only,
                              core::string_technique::dfa, 1})
                .label(),
            "sD");
}

// --------------------------------- end-to-end: compiled RF vs ground truth

TEST(Integration, NoFalseNegativeOnRunningExample) {
  // exact(record) => rf(record), checked over handcrafted records.
  const query q = riotbench::q0();
  core::raw_filter rf(compile_default(q));
  const std::vector<std::string> records{
      kListing1,
      R"({"e":[{"v":"21.5","u":"far","n":"temperature"}],"bt":1})",
      R"({"e":[{"n":"temperature","v":0.7}]})",
      R"({"e":[{"n":"temperature","v":35.1}]})",
      R"({"e":[{"n":"temperature","v":35.2}]})",
      R"({"e":[{"n":"humidity","v":"12"}]})",
      R"({"e":[]})",
  };
  for (const std::string& record : records) {
    if (eval_record(q, record)) {
      EXPECT_TRUE(rf.accepts(record)) << record;
    }
  }
}

TEST(Integration, StructuralFilterStrictlySharperOnListing1) {
  const query q = riotbench::q0();
  const std::vector<attribute_choice> flat(
      1, attribute_choice{attribute_mode::flat_and,
                          core::string_technique::substring, 1});
  core::raw_filter flat_rf(compile(q, flat));
  core::raw_filter grouped_rf(compile_default(q));
  EXPECT_TRUE(flat_rf.accepts(kListing1));     // the intro's false positive
  EXPECT_FALSE(grouped_rf.accepts(kListing1)); // removed by structure
  EXPECT_FALSE(eval_record(q, kListing1));     // ground truth agrees
}

}  // namespace
}  // namespace jrf::query
