#include "regex/dfa.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "regex/parser.hpp"
#include "util/prng.hpp"

namespace jrf::regex {
namespace {

std::string random_digit_string(util::prng& r, std::size_t max_len) {
  const std::size_t len = r.below(max_len + 1);
  return r.ascii(len, "0123456789");
}

TEST(Dfa, AgreesWithNfaOnSimplePatterns) {
  const char* patterns[] = {"abc",       "a*b",           "(ab|cd)+",
                            "[0-9]{3}",  "x(y|z)?",       "[a-f]+[0-9]*",
                            "(a|b)*abb", "\\d+\\.\\d+"};
  const char* inputs[] = {"",    "a",    "abc",   "ab",   "cd",  "abcd",
                          "123", "12",   "xyz",   "xy",   "x",   "abb",
                          "aabb", "12.5", "12.",  "bbb",  "fff0"};
  for (const char* pattern : patterns) {
    const nfa m = build_nfa(parse(pattern));
    const dfa d = dfa::determinize(m);
    for (const char* input : inputs) {
      EXPECT_EQ(d.run(input), m.run(input)) << pattern << " on " << input;
    }
  }
}

TEST(Dfa, MinimizationPreservesLanguage) {
  const char* patterns[] = {"(a|b)*abb", "[0-9]+(\\.[0-9]+)?",
                            "3[5-9]|[4-9][0-9]|[1-9][0-9][0-9]+",
                            "(ab)*|(ba)*", "a{2,5}b{0,3}"};
  util::prng r(7);
  for (const char* pattern : patterns) {
    const dfa d = dfa::determinize(build_nfa(parse(pattern)));
    const dfa m = d.minimized();
    EXPECT_LE(m.state_count(), d.state_count()) << pattern;
    for (int i = 0; i < 500; ++i) {
      const std::string s = r.ascii(r.below(12), "ab0123456789.");
      EXPECT_EQ(d.run(s), m.run(s)) << pattern << " on " << s;
    }
  }
}

TEST(Dfa, HopcroftMatchesMooreStateCount) {
  const char* patterns[] = {"(a|b)*abb",
                            "[0-9]+(\\.[0-9]+)?",
                            "3[5-9]|[4-9][0-9]|[1-9][0-9][0-9]+",
                            "(0|1(01*0)*1)*",  // binary multiples of 3
                            "a(bc)*d|ae*f"};
  for (const char* pattern : patterns) {
    const dfa d = dfa::determinize(build_nfa(parse(pattern)));
    const dfa hopcroft = d.minimized();
    const dfa moore = d.minimized_moore();
    EXPECT_EQ(hopcroft.state_count(), moore.state_count()) << pattern;
  }
}

TEST(Dfa, MinimizationIsIdempotent) {
  const dfa d = compile("(a|b)*abb");
  EXPECT_EQ(d.minimized().state_count(), d.state_count());
}

TEST(Dfa, KnownMinimalSizes) {
  // (a|b)*abb is the classic 4-state (plus dead) automaton.
  const dfa d = compile("(a|b)*abb");
  int live = 0;
  for (int s = 0; s < d.state_count(); ++s)
    if (!d.dead(s)) ++live;
  EXPECT_EQ(live, 4);
}

TEST(Dfa, Figure2Example) {
  // i >= 35 over all digit strings (with >2 digit support, no leading zeros).
  const dfa d = compile("3[5-9]|[4-9][0-9]|[1-9][0-9][0-9][0-9]*");
  EXPECT_TRUE(d.run("35"));
  EXPECT_TRUE(d.run("36"));
  EXPECT_TRUE(d.run("99"));
  EXPECT_TRUE(d.run("100"));
  EXPECT_TRUE(d.run("12345"));
  EXPECT_FALSE(d.run("34"));
  EXPECT_FALSE(d.run("3"));
  EXPECT_FALSE(d.run(""));
  EXPECT_FALSE(d.run("abc"));
  // Paper's Figure 2 DFA has 4 live states + accept; ours after minimization
  // should have at most 5 live states.
  int live = 0;
  for (int s = 0; s < d.state_count(); ++s)
    if (!d.dead(s)) ++live;
  EXPECT_LE(live, 5);
}

TEST(Dfa, ProductIntersection) {
  // strings over {a,b} with even number of a's AND ending in b
  const dfa even_a = compile("(b*ab*a)*b*");
  const dfa ends_b = compile("(a|b)*b");
  const dfa both = dfa::product(even_a, ends_b,
                                [](bool x, bool y) { return x && y; });
  EXPECT_TRUE(both.run("aab"));
  EXPECT_TRUE(both.run("b"));
  EXPECT_FALSE(both.run("ab"));
  EXPECT_FALSE(both.run("aa"));
  util::prng r(11);
  for (int i = 0; i < 1000; ++i) {
    const std::string s = r.ascii(r.below(10), "ab");
    EXPECT_EQ(both.run(s), even_a.run(s) && ends_b.run(s)) << s;
  }
}

TEST(Dfa, ProductUnion) {
  const dfa a = compile("[0-9]+");
  const dfa b = compile("[a-z]+");
  const dfa either = dfa::product(a, b, [](bool x, bool y) { return x || y; });
  EXPECT_TRUE(either.run("123"));
  EXPECT_TRUE(either.run("abc"));
  EXPECT_FALSE(either.run("a1"));
  EXPECT_FALSE(either.run(""));
}

TEST(Dfa, DeadStateDetection) {
  const dfa d = compile("ab");
  int dead_states = 0;
  for (int s = 0; s < d.state_count(); ++s)
    if (d.dead(s)) ++dead_states;
  EXPECT_EQ(dead_states, 1);  // minimized: one absorbing reject state
}

TEST(Dfa, ClassPartitionConsistency) {
  const dfa d = compile("[0-9]+(\\.[0-9]+)?");
  // All digits must fall in one class (they behave identically).
  const int digit_class = d.klass('0');
  for (char c = '1'; c <= '9'; ++c) EXPECT_EQ(d.klass(static_cast<unsigned char>(c)), digit_class);
  // '.' must differ from digits.
  EXPECT_NE(d.klass('.'), digit_class);
  // class_symbols inverts klass.
  for (int cls = 0; cls < d.class_count(); ++cls) {
    const auto symbols = d.class_symbols(cls);
    for (unsigned b = 0; b < 256; ++b)
      EXPECT_EQ(symbols.contains(static_cast<unsigned char>(b)), d.klass(static_cast<unsigned char>(b)) == cls);
  }
}

TEST(Dfa, RandomizedNfaDfaEquivalence) {
  util::prng r(23);
  const char* patterns[] = {"([1-9][0-9]*|0)(\\.[0-9]+)?",
                            "(a|b|ab)*",
                            "[0-9]{2,4}x?"};
  for (const char* pattern : patterns) {
    const nfa m = build_nfa(parse(pattern));
    const dfa d = dfa::determinize(m).minimized();
    for (int i = 0; i < 2000; ++i) {
      const std::string s = r.ascii(r.below(8), "ab01239.x");
      EXPECT_EQ(d.run(s), m.run(s)) << pattern << " on " << s;
    }
  }
}

TEST(Dfa, StepMatchesRun) {
  const dfa d = compile("[0-9]+");
  int s = d.start();
  for (char c : std::string("123")) s = d.step(s, static_cast<unsigned char>(c));
  EXPECT_TRUE(d.accepting(s));
}

TEST(Dfa, DotExportMentionsAcceptingState) {
  const dfa d = compile("ab");
  const std::string dot = d.to_dot();
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
}

TEST(Dfa, DigitStringsAgainstReference) {
  // Cross-check the Figure 2 pattern against an arithmetic oracle.
  const dfa d = compile("3[5-9]|[4-9][0-9]|[1-9][0-9][0-9][0-9]*");
  util::prng r(31);
  for (int i = 0; i < 3000; ++i) {
    const std::string s = random_digit_string(r, 6);
    bool expected = false;
    if (!s.empty() && s[0] != '0') {
      errno = 0;
      const unsigned long v = std::stoul(s);
      expected = v >= 35;
    }
    EXPECT_EQ(d.run(s), expected) << s;
  }
}

}  // namespace
}  // namespace jrf::regex
