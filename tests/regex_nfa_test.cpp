#include "regex/nfa.hpp"

#include <gtest/gtest.h>

#include "regex/parser.hpp"

namespace jrf::regex {
namespace {

bool matches(const char* pattern, std::string_view text) {
  return build_nfa(parse(pattern)).run(text);
}

TEST(Nfa, Literal) {
  EXPECT_TRUE(matches("abc", "abc"));
  EXPECT_FALSE(matches("abc", "ab"));
  EXPECT_FALSE(matches("abc", "abcd"));
  EXPECT_FALSE(matches("abc", ""));
}

TEST(Nfa, EmptyPattern) {
  EXPECT_TRUE(matches("", ""));
  EXPECT_FALSE(matches("", "a"));
}

TEST(Nfa, Alternation) {
  EXPECT_TRUE(matches("ab|cd", "ab"));
  EXPECT_TRUE(matches("ab|cd", "cd"));
  EXPECT_FALSE(matches("ab|cd", "ad"));
}

TEST(Nfa, Star) {
  EXPECT_TRUE(matches("a*", ""));
  EXPECT_TRUE(matches("a*", "aaaa"));
  EXPECT_FALSE(matches("a*", "ab"));
  EXPECT_TRUE(matches("(ab)*", "ababab"));
  EXPECT_FALSE(matches("(ab)*", "aba"));
}

TEST(Nfa, Plus) {
  EXPECT_FALSE(matches("a+", ""));
  EXPECT_TRUE(matches("a+", "a"));
  EXPECT_TRUE(matches("a+", "aaa"));
}

TEST(Nfa, Optional) {
  EXPECT_TRUE(matches("ab?c", "ac"));
  EXPECT_TRUE(matches("ab?c", "abc"));
  EXPECT_FALSE(matches("ab?c", "abbc"));
}

TEST(Nfa, Classes) {
  EXPECT_TRUE(matches("[0-9]+", "123"));
  EXPECT_FALSE(matches("[0-9]+", "12a"));
  EXPECT_TRUE(matches("[^x]", "y"));
  EXPECT_FALSE(matches("[^x]", "x"));
}

TEST(Nfa, NumberExample) {
  // The paper's Figure 2 example: i >= 35 (two-or-more-digit form).
  const char* pattern = "3[5-9]|[4-9][0-9]|[1-9][0-9][0-9]+";
  EXPECT_TRUE(matches(pattern, "35"));
  EXPECT_TRUE(matches(pattern, "99"));
  EXPECT_TRUE(matches(pattern, "100"));
  EXPECT_TRUE(matches(pattern, "713"));
  EXPECT_FALSE(matches(pattern, "34"));
  EXPECT_FALSE(matches(pattern, "9"));
  EXPECT_FALSE(matches(pattern, "035"));
}

TEST(Nfa, NestedQuantifiers) {
  EXPECT_TRUE(matches("(a|b)*abb", "abababb"));
  EXPECT_FALSE(matches("(a|b)*abb", "ababab"));
  EXPECT_TRUE(matches("((a)|(bb))+", "abba"));
}

TEST(Nfa, ThompsonInvariantSingleAccept) {
  const nfa m = build_nfa(parse("(a|b)*c"));
  EXPECT_GE(m.size(), 2u);
  EXPECT_GE(m.accept, 0);
  EXPECT_LT(static_cast<std::size_t>(m.accept), m.size());
}

}  // namespace
}  // namespace jrf::regex
