#include "regex/parser.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace jrf::regex {
namespace {

TEST(RegexParser, Literals) {
  EXPECT_EQ(parse("abc")->kind(), op::concat);
  EXPECT_EQ(parse("a")->kind(), op::chars);
  EXPECT_EQ(parse("")->kind(), op::empty);
}

TEST(RegexParser, ClassParsing) {
  const auto n = parse("[a-c]");
  ASSERT_EQ(n->kind(), op::chars);
  EXPECT_TRUE(n->chars().contains('a'));
  EXPECT_TRUE(n->chars().contains('b'));
  EXPECT_TRUE(n->chars().contains('c'));
  EXPECT_FALSE(n->chars().contains('d'));
}

TEST(RegexParser, NegatedClass) {
  const auto n = parse("[^0-9]");
  ASSERT_EQ(n->kind(), op::chars);
  EXPECT_FALSE(n->chars().contains('5'));
  EXPECT_TRUE(n->chars().contains('a'));
}

TEST(RegexParser, ClassWithLeadingBracket) {
  const auto n = parse("[]a]");  // ']' first is a member
  ASSERT_EQ(n->kind(), op::chars);
  EXPECT_TRUE(n->chars().contains(']'));
  EXPECT_TRUE(n->chars().contains('a'));
}

TEST(RegexParser, EscapeClasses) {
  EXPECT_TRUE(parse("\\d")->chars().contains('7'));
  EXPECT_FALSE(parse("\\d")->chars().contains('a'));
  EXPECT_TRUE(parse("\\w")->chars().contains('_'));
  EXPECT_TRUE(parse("\\s")->chars().contains(' '));
  EXPECT_TRUE(parse("\\.")->chars().contains('.'));
  EXPECT_EQ(parse("\\.")->chars().count(), 1u);
}

TEST(RegexParser, DotIsAnyByte) {
  EXPECT_EQ(parse(".")->chars().count(), 256u);
}

TEST(RegexParser, Quantifiers) {
  EXPECT_EQ(parse("a*")->kind(), op::star);
  EXPECT_EQ(parse("a+")->kind(), op::plus);
  EXPECT_EQ(parse("a?")->kind(), op::opt);
}

TEST(RegexParser, BoundedRepetition) {
  // a{3} expands to aaa
  const auto n = parse("a{3}");
  ASSERT_EQ(n->kind(), op::concat);
  EXPECT_EQ(n->children().size(), 3u);
  // a{2,} = a a+
  const auto m = parse("a{2,}");
  ASSERT_EQ(m->kind(), op::concat);
  EXPECT_EQ(m->children().back()->kind(), op::plus);
  // a{1,3} = a a? a?
  const auto k = parse("a{1,3}");
  ASSERT_EQ(k->kind(), op::concat);
  EXPECT_EQ(k->children().size(), 3u);
}

TEST(RegexParser, AlternationAndGrouping) {
  EXPECT_EQ(parse("a|b")->kind(), op::chars);  // merged into one class
  EXPECT_EQ(parse("ab|cd")->kind(), op::alt);
  EXPECT_EQ(parse("(ab)*")->kind(), op::star);
}

TEST(RegexParser, RejectsMalformed) {
  for (const char* pattern : {"(", ")", "(a", "[", "[a", "a{", "a{2", "a{3,1}",
                              "*", "+a|*", "a{99999}"}) {
    EXPECT_THROW(parse(pattern), jrf::parse_error) << pattern;
  }
}

TEST(RegexParser, ToStringRoundTripsSemantics) {
  for (const char* pattern :
       {"abc", "[0-9]+", "(a|bc)*d", "x{2,4}", "\\d+\\.\\d*", "[^a]b?"}) {
    const auto original = parse(pattern);
    const auto reparsed = parse(original->to_string());
    EXPECT_EQ(original->to_string(), reparsed->to_string()) << pattern;
  }
}

}  // namespace
}  // namespace jrf::regex
