#include "rtl/simulator.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "netlist/builders.hpp"
#include "rtl/vcd.hpp"
#include "util/error.hpp"

namespace jrf::rtl {
namespace {

using netlist::bus;
using netlist::network;
using netlist::node_id;

TEST(Simulator, ToggleFlop) {
  network net;
  const node_id reg = net.dff("t");
  net.connect_dff(reg, net.not_gate(reg));
  simulator sim(net);
  sim.reset();
  EXPECT_FALSE(sim.value(reg));
  sim.step();
  EXPECT_TRUE(sim.value(reg));
  sim.step();
  EXPECT_FALSE(sim.value(reg));
  EXPECT_EQ(sim.cycle(), 2u);
}

TEST(Simulator, TwoPhaseCommitIsSimultaneous) {
  // Swap register: a <= b, b <= a each cycle. A one-phase simulator would
  // smear one value across both.
  network net;
  const node_id a = net.dff("a");
  const node_id b = net.dff("b");
  const node_id init = net.input("init");
  // a <= init ? 1 : b ; b <= init ? 0 : a
  net.connect_dff(a, net.mux(init, net.constant(true), b));
  net.connect_dff(b, net.mux(init, net.constant(false), a));
  simulator sim(net);
  sim.reset();
  sim.set_input(init, true);
  sim.step();
  sim.set_input(init, false);
  EXPECT_TRUE(sim.value(a));
  EXPECT_FALSE(sim.value(b));
  sim.step();
  EXPECT_FALSE(sim.value(a));
  EXPECT_TRUE(sim.value(b));
  sim.step();
  EXPECT_TRUE(sim.value(a));
  EXPECT_FALSE(sim.value(b));
}

TEST(Simulator, SettleDoesNotAdvanceState) {
  network net;
  const node_id reg = net.dff("t");
  net.connect_dff(reg, net.not_gate(reg));
  simulator sim(net);
  sim.reset();
  sim.settle();
  sim.settle();
  EXPECT_FALSE(sim.value(reg));
  EXPECT_EQ(sim.cycle(), 0u);
}

TEST(Simulator, SetInputValidation) {
  network net;
  const node_id a = net.input("a");
  const node_id y = net.not_gate(a);
  net.mark_output(y, "y");
  simulator sim(net);
  EXPECT_THROW(sim.set_input(y, true), jrf::error);
}

TEST(Simulator, UnconnectedRegisterFails) {
  network net;
  net.dff("floating");
  simulator sim(net);
  EXPECT_THROW(sim.step(), jrf::error);
}

TEST(Simulator, BusRoundTrip) {
  network net;
  const bus x = netlist::input_bus(net, "x", 8);
  simulator sim(net);
  for (unsigned v : {0u, 1u, 42u, 255u}) {
    sim.set_bus(x, v);
    sim.settle();
    EXPECT_EQ(sim.bus_value(x), v);
  }
}

TEST(Vcd, ProducesWellFormedDump) {
  network net;
  const node_id reg = net.dff("t");
  net.connect_dff(reg, net.not_gate(reg));
  const bus cnt = netlist::match_counter(net, net.constant(true), 3, "cnt");

  simulator sim(net);
  sim.reset();
  std::ostringstream out;
  vcd_writer vcd(out, "test");
  vcd.add_signal("toggle", reg);
  vcd.add_bus("counter", cnt);
  vcd.begin();
  for (int i = 0; i < 4; ++i) {
    sim.step();
    vcd.sample(sim, static_cast<std::uint64_t>(i) * 5);
  }
  const std::string dump = out.str();
  EXPECT_NE(dump.find("$timescale"), std::string::npos);
  EXPECT_NE(dump.find("$var wire 1"), std::string::npos);
  EXPECT_NE(dump.find("$var wire 3"), std::string::npos);
  EXPECT_NE(dump.find("$enddefinitions"), std::string::npos);
  EXPECT_NE(dump.find("#0"), std::string::npos);
  // The 3-bit counter reaches b100 by cycle 4.
  EXPECT_NE(dump.find("b100"), std::string::npos);
}

TEST(Vcd, RegistrationAfterBeginFails) {
  network net;
  const node_id a = net.input("a");
  std::ostringstream out;
  vcd_writer vcd(out, "m");
  vcd.begin();
  EXPECT_THROW(vcd.add_signal("late", a), jrf::error);
}

TEST(Vcd, SampleBeforeBeginFails) {
  network net;
  simulator sim(net);
  std::ostringstream out;
  vcd_writer vcd(out, "m");
  EXPECT_THROW(vcd.sample(sim, 0), jrf::error);
}

}  // namespace
}  // namespace jrf::rtl
