// Concurrency determinism suite (ROADMAP "Concurrent sharded execution").
//
// The contract under test: worker threads change host wall clock only.
// The same shard streams filtered with 1, 2 and N worker threads must
// produce byte-identical per-shard decision vectors and the identical
// cycle-quantized report, because lanes share no mutable state and each
// lane's byte sequence is schedule-independent. Run under TSan in CI (one
// configuration builds -fsanitize=thread) the suite also proves the
// per-lane locking: producer threads hammering offer() while workers
// drain never race.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/expr.hpp"
#include "core/raw_filter.hpp"
#include "data/smartcity.hpp"
#include "data/stream.hpp"
#include "query/compile.hpp"
#include "query/riotbench.hpp"
#include "system/ingest.hpp"
#include "system/sharded.hpp"

namespace jrf::system {
namespace {

std::vector<std::string_view> views(const std::vector<std::string>& streams) {
  return {streams.begin(), streams.end()};
}

void expect_reports_identical(const sharded_report& a,
                              const sharded_report& b,
                              std::size_t workers) {
  EXPECT_EQ(a.bytes, b.bytes) << workers;
  EXPECT_EQ(a.records, b.records) << workers;
  EXPECT_EQ(a.accepted, b.accepted) << workers;
  EXPECT_EQ(a.backpressure_events, b.backpressure_events) << workers;
  EXPECT_EQ(a.hard_backpressure_events, b.hard_backpressure_events)
      << workers;
  EXPECT_EQ(a.cycles, b.cycles) << workers;
  EXPECT_EQ(a.stall_cycles, b.stall_cycles) << workers;
  EXPECT_EQ(a.seconds, b.seconds) << workers;
  EXPECT_EQ(a.gbytes_per_second, b.gbytes_per_second) << workers;
  ASSERT_EQ(a.shards.size(), b.shards.size());
  for (std::size_t s = 0; s < a.shards.size(); ++s) {
    EXPECT_EQ(a.shards[s].offered, b.shards[s].offered) << workers << s;
    EXPECT_EQ(a.shards[s].bytes, b.shards[s].bytes) << workers << s;
    EXPECT_EQ(a.shards[s].records, b.shards[s].records) << workers << s;
    EXPECT_EQ(a.shards[s].accepted, b.shards[s].accepted) << workers << s;
    EXPECT_EQ(a.shards[s].fifo_high_watermark,
              b.shards[s].fifo_high_watermark)
        << workers << s;
  }
}

TEST(ShardedConcurrency, WorkerCountNeverChangesDecisionsOrReport) {
  data::smartcity_generator gen;
  const auto rf = query::compile_default(query::riotbench::qs0());
  const auto streams = data::shard_records(gen.stream(400), 4);

  // Serial reference: the paper-reproduction path, no pool at all.
  sharded_filter_system serial(rf, 4);
  const sharded_report reference = serial.run(views(streams));

  const std::size_t hw = std::thread::hardware_concurrency();
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                    std::max<std::size_t>(hw, 3)}) {
    system_options options;
    options.worker_threads = workers;
    sharded_filter_system threaded(rf, 4, options);
    const sharded_report report = threaded.run(views(streams));

    for (std::size_t shard = 0; shard < 4; ++shard)
      EXPECT_EQ(threaded.decisions(shard), serial.decisions(shard))
          << "workers=" << workers << " shard=" << shard;
    expect_reports_identical(report, reference, workers);
  }
}

TEST(ShardedConcurrency, TinyFifoBackpressureIsDeterministicUnderWorkers) {
  // FIFO smaller than the burst: the offer/pump interleave exercises
  // truncated offers; the counts must still be schedule-independent
  // because run()'s rounds are barriers.
  data::smartcity_generator gen;
  const auto streams = data::shard_records(gen.stream(120), 3);
  const core::expr_ptr rf = core::string_leaf("temperature", 1);

  system_options serial_options;
  serial_options.lane_fifo_bytes = 96;
  serial_options.dma_burst_bytes = 512;
  sharded_filter_system serial(rf, 3, serial_options);
  const sharded_report reference = serial.run(views(streams));
  EXPECT_GT(reference.backpressure_events, 0u);

  system_options threaded_options = serial_options;
  threaded_options.worker_threads = 4;
  sharded_filter_system threaded(rf, 3, threaded_options);
  const sharded_report report = threaded.run(views(streams));

  expect_reports_identical(report, reference, 4);
  for (std::size_t shard = 0; shard < 3; ++shard)
    EXPECT_EQ(threaded.decisions(shard), serial.decisions(shard)) << shard;
}

TEST(ShardedConcurrency, ProducerThreadsRacingPumpStayLossless) {
  // One producer thread per shard offering concurrently with pump() on
  // the worker pool: bytes may interleave with draining arbitrarily, but
  // per-lane locking must keep every lane's byte sequence intact, so the
  // decisions equal the serial reference. (TSan checks the locking.)
  data::smartcity_generator gen;
  const auto streams = data::shard_records(gen.stream(200), 3);
  const core::expr_ptr rf = core::string_leaf("temperature", 1);

  system_options options;
  options.worker_threads = 3;
  options.lane_fifo_bytes = 256;  // small: force real backpressure
  sharded_filter_system sys(rf, 3, options);

  std::atomic<bool> done{false};
  std::vector<std::thread> producers;
  for (std::size_t shard = 0; shard < 3; ++shard) {
    producers.emplace_back([&, shard] {
      std::string_view remaining = streams[shard];
      while (!remaining.empty()) {
        const std::size_t taken =
            sys.offer(shard, remaining.substr(0, 128));
        remaining.remove_prefix(taken);
        if (taken == 0) std::this_thread::yield();  // hard backpressure
      }
    });
  }
  // Consumer: keep pumping until every producer delivered everything.
  std::thread consumer([&] {
    while (!done.load(std::memory_order_acquire)) sys.pump(512);
  });
  for (std::thread& producer : producers) producer.join();
  done.store(true, std::memory_order_release);
  consumer.join();
  sys.finish();

  core::raw_filter reference(rf);
  for (std::size_t shard = 0; shard < 3; ++shard)
    EXPECT_EQ(sys.decisions(shard), reference.filter_stream(streams[shard]))
        << shard;
  const sharded_report report = sys.report();
  EXPECT_EQ(report.bytes, streams[0].size() + streams[1].size() +
                              streams[2].size());
}

TEST(ShardedConcurrency, ConcurrentRunnerMatchesSerialUnderWorkers) {
  // The ingest machinery end to end: synthetic-rate sources driven by the
  // runner over a threaded system equal the serial run of the same bytes.
  const std::string corpus =
      "{\"temperature\":9}\n{\"pressure\":3}\n{\"temperature\":1}\n";
  const std::size_t total = corpus.size() * 8;
  const core::expr_ptr rf = core::string_leaf("temperature", 1);

  std::string replay;
  for (int i = 0; i < 8; ++i) replay += corpus;

  system_options options;
  options.worker_threads = 4;
  sharded_filter_system sys(rf, 2, options);
  concurrent_runner runner(sys, 64);
  runner.bind(0, std::make_unique<synthetic_rate_source>(corpus, total, 48));
  runner.bind(1, std::make_unique<synthetic_rate_source>(corpus, total, 16));
  const sharded_report report = runner.run();

  core::raw_filter reference(rf);
  const auto expected = reference.filter_stream(replay);
  EXPECT_EQ(sys.decisions(0), expected);
  EXPECT_EQ(sys.decisions(1), expected);
  EXPECT_EQ(report.bytes, 2 * total);
}

}  // namespace
}  // namespace jrf::system
