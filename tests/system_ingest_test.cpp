// Tests for the ingest-source abstraction and the concurrent runner.
#include "system/ingest.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "core/expr.hpp"
#include "core/raw_filter.hpp"
#include "data/smartcity.hpp"
#include "data/stream.hpp"
#include "util/error.hpp"

namespace jrf::system {
namespace {

core::expr_ptr simple_filter() { return core::string_leaf("temperature", 1); }

/// Drain a source to a string via the peek/consume protocol, `step` bytes
/// at a time.
std::string drain(ingest_source& source, std::size_t step) {
  std::string out;
  while (!source.exhausted()) {
    const std::string_view view = source.peek(step);
    if (view.empty()) break;
    out.append(view);
    source.consume(view.size());
  }
  return out;
}

TEST(MemorySource, DrainsBufferInOrder) {
  const std::string buffer = "abcdefghij";
  memory_source source(buffer);
  EXPECT_FALSE(source.exhausted());
  EXPECT_EQ(drain(source, 3), buffer);
  EXPECT_TRUE(source.exhausted());
  EXPECT_TRUE(source.peek(16).empty());
}

TEST(MemorySource, PartialConsumeRepeeksRemainder) {
  memory_source source("hello world");
  EXPECT_EQ(source.peek(5), "hello");
  source.consume(2);  // backpressured offer took only 2 bytes
  EXPECT_EQ(source.peek(5), "llo w");
  EXPECT_THROW(source.consume(100), error);
}

TEST(MemorySource, UncappedPeekReturnsEverything) {
  memory_source source("0123456789");
  EXPECT_EQ(source.peek(0), "0123456789");
}

TEST(ChunkedFileSource, StreamsFileAcrossChunkBoundaries) {
  const std::string path = testing::TempDir() + "jrf_ingest_file.ndjson";
  const std::string content = data::smartcity_generator().stream(50);
  { std::ofstream(path, std::ios::binary) << content; }

  // Chunk far smaller than the file: peeks must splice back losslessly.
  chunked_file_source source(path, 64);
  EXPECT_EQ(drain(source, 29), content);
  EXPECT_TRUE(source.exhausted());
  std::remove(path.c_str());
}

TEST(ChunkedFileSource, EmptyFileIsImmediatelyExhausted) {
  const std::string path = testing::TempDir() + "jrf_ingest_empty";
  { std::ofstream touch(path, std::ios::binary); }
  chunked_file_source source(path, 64);
  EXPECT_TRUE(source.peek(16).empty());
  EXPECT_TRUE(source.exhausted());
  std::remove(path.c_str());
}

TEST(ChunkedFileSource, MissingFileThrows) {
  EXPECT_THROW(chunked_file_source("/nonexistent/jrf-no-such-file"), error);
}

TEST(SyntheticRateSource, ReplaysCorpusUpToTotal) {
  const std::string corpus = "{\"temperature\":1}\n";
  synthetic_rate_source source(corpus, corpus.size() * 3, 7);
  const std::string produced = drain(source, 0);
  EXPECT_EQ(produced, corpus + corpus + corpus);
  EXPECT_TRUE(source.exhausted());
}

TEST(SyntheticRateSource, CapsBytesPerPull) {
  synthetic_rate_source source("abcdef", 600, 5);
  while (!source.exhausted()) {
    const std::string_view view = source.peek(0);
    EXPECT_LE(view.size(), 5u);  // the modeled line rate
    ASSERT_FALSE(view.empty());
    source.consume(view.size());
  }
}

TEST(SyntheticRateSource, RejectsBadConfigurations) {
  EXPECT_THROW(synthetic_rate_source("", 10, 4), error);
  EXPECT_THROW(synthetic_rate_source("x", 10, 0), error);
  synthetic_rate_source empty_ok("", 0, 4);  // zero total: fine, exhausted
  EXPECT_TRUE(empty_ok.exhausted());
  EXPECT_TRUE(empty_ok.peek(8).empty());
}

TEST(ConcurrentRunner, MixedSourcesMatchReferenceFilter) {
  data::smartcity_generator gen;
  const std::string stream_a = gen.stream(80);
  const std::string stream_b = gen.stream(60);
  const std::string corpus = "{\"temperature\":1}\n{\"humidity\":2}\n";

  const std::string path = testing::TempDir() + "jrf_runner_feed.ndjson";
  { std::ofstream(path, std::ios::binary) << stream_b; }

  sharded_filter_system sys(simple_filter(), 3);
  concurrent_runner runner(sys);
  runner.bind(0, std::make_unique<memory_source>(stream_a));
  runner.bind(1, std::make_unique<chunked_file_source>(path, 128));
  runner.bind(2, std::make_unique<synthetic_rate_source>(
                     corpus, corpus.size() * 5, 11));
  const sharded_report report = runner.run();
  std::remove(path.c_str());

  core::raw_filter reference(simple_filter());
  EXPECT_EQ(sys.decisions(0), reference.filter_stream(stream_a));
  EXPECT_EQ(sys.decisions(1), reference.filter_stream(stream_b));
  std::string replay;
  for (int i = 0; i < 5; ++i) replay += corpus;
  EXPECT_EQ(sys.decisions(2), reference.filter_stream(replay));
  EXPECT_EQ(report.bytes,
            stream_a.size() + stream_b.size() + corpus.size() * 5);
}

TEST(ConcurrentRunner, UnboundShardIdlesAsImbalance) {
  data::smartcity_generator gen;
  const std::string stream = gen.stream(60);

  sharded_filter_system sys(simple_filter(), 2);
  concurrent_runner runner(sys);
  runner.bind(0, std::make_unique<memory_source>(stream));
  const sharded_report report = runner.run();

  EXPECT_EQ(report.shards[1].records, 0u);
  EXPECT_GT(report.stall_cycles, 0u);
}

TEST(ConcurrentRunner, HonoursBackpressureWithTinyFifo) {
  data::smartcity_generator gen;
  const std::string stream = gen.stream(60);

  system_options options;
  options.lane_fifo_bytes = 64;
  options.dma_burst_bytes = 256;  // bursts larger than the FIFO
  sharded_filter_system sys(simple_filter(), 1, options);
  concurrent_runner runner(sys);
  runner.bind(0, std::make_unique<memory_source>(stream));
  const sharded_report report = runner.run();

  EXPECT_EQ(report.bytes, stream.size());
  EXPECT_GT(report.backpressure_events, 0u);
  core::raw_filter reference(simple_filter());
  EXPECT_EQ(sys.decisions(0), reference.filter_stream(stream));
}

TEST(ConcurrentRunner, RejectsBadBindings) {
  sharded_filter_system sys(simple_filter(), 2);
  concurrent_runner runner(sys);
  EXPECT_THROW(runner.bind(2, std::make_unique<memory_source>("x")), error);
  EXPECT_THROW(runner.bind(0, nullptr), error);
}

TEST(ConcurrentRunner, RunWithNoSourcesReportsAllZero) {
  sharded_filter_system sys(simple_filter(), 2);
  concurrent_runner runner(sys);
  const sharded_report report = runner.run();
  EXPECT_EQ(report.bytes, 0u);
  EXPECT_EQ(report.cycles, 0u);
  EXPECT_EQ(report.seconds, 0.0);
}

}  // namespace
}  // namespace jrf::system
