// Tests for the sharded multi-stream system model.
#include "system/sharded.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string_view>
#include <vector>

#include "core/expr.hpp"
#include "core/raw_filter.hpp"
#include "data/smartcity.hpp"
#include "data/stream.hpp"
#include "query/compile.hpp"
#include "query/riotbench.hpp"
#include "util/error.hpp"

namespace jrf::system {
namespace {

core::expr_ptr simple_filter() { return core::string_leaf("temperature", 1); }

std::vector<std::string_view> views(const std::vector<std::string>& streams) {
  return {streams.begin(), streams.end()};
}

TEST(ShardedSystem, PerShardDecisionsMatchReferenceFilter) {
  data::smartcity_generator gen;
  const auto streams = data::shard_records(gen.stream(400), 4);

  sharded_filter_system sys(simple_filter(), 4);
  sys.run(views(streams));

  core::raw_filter reference(simple_filter());
  for (std::size_t shard = 0; shard < streams.size(); ++shard) {
    const auto expected = reference.filter_stream(streams[shard]);
    EXPECT_EQ(sys.decisions(shard), expected) << "shard " << shard;
  }
}

TEST(ShardedSystem, BothEngineKindsAgree) {
  data::smartcity_generator gen;
  const auto rf = query::compile_default(query::riotbench::qs0());
  const auto streams = data::shard_records(gen.stream(300), 3);

  system_options scalar_options;
  scalar_options.engine = core::engine_kind::scalar;
  sharded_filter_system scalar(rf, 3, scalar_options);
  sharded_filter_system chunked(rf, 3);
  scalar.run(views(streams));
  chunked.run(views(streams));
  for (std::size_t shard = 0; shard < 3; ++shard)
    EXPECT_EQ(scalar.decisions(shard), chunked.decisions(shard)) << shard;
}

TEST(ShardedSystem, ReportAggregatesShards) {
  data::smartcity_generator gen;
  const auto streams = data::shard_records(gen.stream(200), 4);

  sharded_filter_system sys(simple_filter(), 4);
  const sharded_report report = sys.run(views(streams));

  ASSERT_EQ(report.shards.size(), 4u);
  std::uint64_t bytes = 0;
  std::uint64_t records = 0;
  std::uint64_t accepted = 0;
  for (std::size_t shard = 0; shard < 4; ++shard) {
    bytes += report.shards[shard].bytes;
    records += report.shards[shard].records;
    accepted += report.shards[shard].accepted;
    EXPECT_EQ(report.shards[shard].bytes, streams[shard].size()) << shard;
    EXPECT_EQ(report.shards[shard].records, sys.decisions(shard).size());
  }
  EXPECT_EQ(report.bytes, bytes);
  EXPECT_EQ(report.records, records);
  EXPECT_EQ(report.accepted, accepted);
  EXPECT_GT(report.cycles, 0u);
  EXPECT_GT(report.gbytes_per_second, 0.0);
  EXPECT_NEAR(report.theoretical_gbps, 0.8, 0.01);  // 4 lanes x 200 MHz
}

TEST(ShardedSystem, OfferHonoursFifoBackpressure) {
  system_options options;
  options.lane_fifo_bytes = 32;
  sharded_filter_system sys(simple_filter(), 1, options);

  const std::string big(100, 'x');
  const std::size_t taken = sys.offer(0, big);
  EXPECT_EQ(taken, 32u);

  // Full FIFO refuses everything until pumped.
  EXPECT_EQ(sys.offer(0, big), 0u);
  sys.pump();
  EXPECT_EQ(sys.offer(0, big), 32u);

  const sharded_report report = sys.report();
  EXPECT_GE(report.shards[0].backpressure_events, 2u);
  EXPECT_EQ(report.shards[0].fifo_high_watermark, 32u);
  EXPECT_EQ(report.shards[0].offered, 300u);
}

TEST(ShardedSystem, HardBackpressureIsItsOwnStat) {
  system_options options;
  options.lane_fifo_bytes = 32;
  sharded_filter_system sys(simple_filter(), 1, options);

  const std::string big(100, 'x');
  sys.offer(0, big);  // truncated: soft backpressure only
  sharded_report report = sys.report();
  EXPECT_EQ(report.shards[0].backpressure_events, 1u);
  EXPECT_EQ(report.shards[0].hard_backpressure_events, 0u);

  // Full FIFO taking zero bytes of a non-empty offer: hard backpressure,
  // counted both as a backpressure event and in the dedicated stat.
  EXPECT_EQ(sys.offer(0, big), 0u);
  EXPECT_EQ(sys.offer(0, "y"), 0u);
  report = sys.report();
  EXPECT_EQ(report.shards[0].backpressure_events, 3u);
  EXPECT_EQ(report.shards[0].hard_backpressure_events, 2u);
  EXPECT_EQ(report.hard_backpressure_events, 2u);  // merged view

  // After draining, a fitting offer counts neither.
  sys.pump();
  EXPECT_EQ(sys.offer(0, "z"), 1u);
  report = sys.report();
  EXPECT_EQ(report.shards[0].backpressure_events, 3u);
  EXPECT_EQ(report.shards[0].hard_backpressure_events, 2u);
}

TEST(ShardedSystem, EmptyOfferOnFullFifoChangesNoCounters) {
  system_options options;
  options.lane_fifo_bytes = 32;
  sharded_filter_system sys(simple_filter(), 1, options);
  sys.offer(0, std::string(32, 'x'));  // exactly fills the FIFO
  const sharded_report before = sys.report();

  EXPECT_EQ(sys.offer(0, std::string_view{}), 0u);
  EXPECT_EQ(sys.offer(0, ""), 0u);

  const sharded_report after = sys.report();
  EXPECT_EQ(after.shards[0].offered, before.shards[0].offered);
  EXPECT_EQ(after.shards[0].backpressure_events,
            before.shards[0].backpressure_events);
  EXPECT_EQ(after.shards[0].hard_backpressure_events,
            before.shards[0].hard_backpressure_events);
  EXPECT_EQ(after.shards[0].fifo_high_watermark,
            before.shards[0].fifo_high_watermark);
  EXPECT_EQ(after.shards[0].bytes, before.shards[0].bytes);
}

TEST(ShardedSystem, ZeroByteReportHasNoNanOrInf) {
  // report() on a freshly constructed system: every derived rate must be
  // exactly zero - not the configured peak, and never NaN/inf.
  sharded_filter_system sys(simple_filter(), 4);
  const sharded_report report = sys.report();
  EXPECT_EQ(report.bytes, 0u);
  EXPECT_EQ(report.records, 0u);
  EXPECT_EQ(report.cycles, 0u);
  EXPECT_EQ(report.stall_cycles, 0u);
  EXPECT_EQ(report.seconds, 0.0);
  EXPECT_EQ(report.gbytes_per_second, 0.0);
  EXPECT_EQ(report.theoretical_gbps, 0.0);
  EXPECT_TRUE(std::isfinite(report.seconds));
  EXPECT_TRUE(std::isfinite(report.gbytes_per_second));
  EXPECT_TRUE(std::isfinite(report.theoretical_gbps));
  // to_string on the empty report must not trip anything either.
  EXPECT_FALSE(report.to_string().empty());
}

TEST(ShardedSystem, RunCompletesDespiteTinyFifo) {
  // FIFO smaller than the DMA burst: run() must still move every byte.
  data::smartcity_generator gen;
  const auto streams = data::shard_records(gen.stream(60), 2);

  system_options options;
  options.lane_fifo_bytes = 64;
  options.dma_burst_bytes = 256;
  sharded_filter_system sys(simple_filter(), 2, options);
  const sharded_report report = sys.run(views(streams));

  EXPECT_EQ(report.bytes, streams[0].size() + streams[1].size());
  EXPECT_GT(report.backpressure_events, 0u);

  core::raw_filter reference(simple_filter());
  for (std::size_t shard = 0; shard < 2; ++shard)
    EXPECT_EQ(sys.decisions(shard), reference.filter_stream(streams[shard]));
}

TEST(ShardedSystem, LaneImbalanceShowsAsStalls) {
  // One long stream, one empty: the idle lane stalls while the loaded lane
  // bounds completion.
  std::vector<std::string> streams{
      data::smartcity_generator().stream(100), std::string{}};

  sharded_filter_system sys(simple_filter(), 2);
  const sharded_report report = sys.run(views(streams));
  EXPECT_GT(report.stall_cycles, 0u);
  EXPECT_EQ(report.shards[1].records, 0u);
}

TEST(ShardedSystem, FinishFlushesTrailingRecord) {
  sharded_filter_system sys(simple_filter(), 1);
  sys.offer(0, "{\"temperature\":1}");  // no trailing separator
  sys.pump();
  EXPECT_TRUE(sys.decisions(0).empty());
  sys.finish();
  ASSERT_EQ(sys.decisions(0).size(), 1u);
  EXPECT_TRUE(sys.decisions(0).front());
}

TEST(ShardedSystem, RejectsBadConfigurations) {
  EXPECT_THROW(sharded_filter_system(simple_filter(), 0), error);

  system_options zero_fifo;
  zero_fifo.lane_fifo_bytes = 0;
  EXPECT_THROW(sharded_filter_system(simple_filter(), 1, zero_fifo), error);

  sharded_filter_system sys(simple_filter(), 2);
  EXPECT_THROW(sys.offer(2, "x"), error);
  EXPECT_THROW(sys.decisions(2), error);

  std::vector<std::string_view> wrong{std::string_view{"a\n"}};
  EXPECT_THROW(sys.run(wrong), error);
}

}  // namespace
}  // namespace jrf::system
