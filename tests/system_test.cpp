// Tests for the system-architecture model (Section IV-B).
#include "system/system.hpp"

#include <gtest/gtest.h>

#include "core/expr.hpp"
#include "core/raw_filter.hpp"
#include "data/smartcity.hpp"
#include "data/stream.hpp"
#include "util/error.hpp"

namespace jrf::system {
namespace {

core::expr_ptr simple_filter() { return core::string_leaf("temperature", 1); }

TEST(FilterSystem, DecisionsMatchSingleFilterReference) {
  // Seven parallel lanes must produce exactly the decisions one filter
  // produces over the whole stream, in stream order.
  data::smartcity_generator gen;
  const std::string stream = gen.stream(500);

  filter_system sys(simple_filter());
  sys.run(stream);

  core::raw_filter reference(simple_filter());
  const auto expected = reference.filter_stream(stream);
  ASSERT_EQ(sys.decisions().size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(sys.decisions()[i], expected[i]) << i;
}

TEST(FilterSystem, SevenLanesBeat10GbELineRate) {
  // The paper's headline: 7 x 1 B/cycle @ 200 MHz sustains 1.33 GB/s,
  // above the 1.25 GB/s of 10 GbE.
  data::smartcity_generator gen;
  const std::string stream = data::inflate(gen.stream(200), 2u << 20);

  filter_system sys(simple_filter());
  const auto report = sys.run(stream);
  EXPECT_NEAR(report.theoretical_gbps, 1.4, 0.01);
  EXPECT_GT(report.gbytes_per_second, report.line_rate_10gbe);
  EXPECT_LT(report.gbytes_per_second, report.theoretical_gbps);
}

TEST(FilterSystem, ThroughputScalesWithLanes) {
  data::smartcity_generator gen;
  const std::string stream = data::inflate(gen.stream(200), 1u << 20);

  double previous = 0.0;
  for (const int lanes : {1, 2, 4, 7}) {
    system_options options;
    options.lanes = lanes;
    filter_system sys(simple_filter(), options);
    const double rate = sys.run(stream).gbytes_per_second;
    EXPECT_GT(rate, previous) << lanes;
    previous = rate;
  }
}

TEST(FilterSystem, DmaOverheadReducesBelowTheoretical) {
  data::smartcity_generator gen;
  const std::string stream = data::inflate(gen.stream(100), 1u << 20);

  system_options costly;
  costly.dma_setup_cycles = 4000;  // pathological descriptor overhead
  filter_system slow(simple_filter(), costly);
  filter_system fast(simple_filter());
  EXPECT_LT(slow.run(stream).gbytes_per_second,
            fast.run(stream).gbytes_per_second);
}

TEST(FilterSystem, SingleLaneApproachesClockRate) {
  data::smartcity_generator gen;
  const std::string stream = data::inflate(gen.stream(100), 1u << 20);
  system_options options;
  options.lanes = 1;
  filter_system sys(simple_filter(), options);
  const auto report = sys.run(stream);
  // 1 byte/cycle at 200 MHz = 0.2 GB/s peak.
  EXPECT_NEAR(report.gbytes_per_second, 0.2, 0.01);
}

TEST(FilterSystem, AcceptedCountsMatchDecisions) {
  data::smartcity_generator gen;
  const std::string stream = gen.stream(300);
  filter_system sys(simple_filter());
  const auto report = sys.run(stream);
  std::size_t accepted = 0;
  for (const bool d : sys.decisions()) accepted += d ? 1 : 0;
  EXPECT_EQ(report.accepted, accepted);
  EXPECT_EQ(report.records, sys.decisions().size());
}

TEST(FilterSystem, RejectsBadOptions) {
  system_options zero_lanes;
  zero_lanes.lanes = 0;
  EXPECT_THROW(filter_system(simple_filter(), zero_lanes), error);
  system_options zero_burst;
  zero_burst.dma_burst_bytes = 0;
  EXPECT_THROW(filter_system(simple_filter(), zero_burst), error);
}

}  // namespace
}  // namespace jrf::system
