#include "util/decimal.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/prng.hpp"

namespace jrf::util {
namespace {

TEST(Decimal, DefaultIsZero) {
  decimal d;
  EXPECT_TRUE(d.is_zero());
  EXPECT_FALSE(d.negative());
  EXPECT_EQ(d.to_string(), "0");
}

TEST(Decimal, FromInt64) {
  EXPECT_EQ(decimal(0).to_string(), "0");
  EXPECT_EQ(decimal(42).to_string(), "42");
  EXPECT_EQ(decimal(-7).to_string(), "-7");
  EXPECT_EQ(decimal(INT64_MIN).to_string(), "-9223372036854775808");
  EXPECT_EQ(decimal(INT64_MAX).to_string(), "9223372036854775807");
}

TEST(Decimal, ParseRoundTrip) {
  for (const char* text : {"0", "1", "-1", "35.2", "-12.5", "0.7", "3322.67",
                           "1422748800000", "0.001", "-0.001"}) {
    EXPECT_EQ(decimal::parse(text).to_string(), text) << text;
  }
}

TEST(Decimal, ParseNormalizes) {
  EXPECT_EQ(decimal::parse("007").to_string(), "7");
  EXPECT_EQ(decimal::parse("1.50").to_string(), "1.5");
  EXPECT_EQ(decimal::parse("000.500").to_string(), "0.5");
  EXPECT_EQ(decimal::parse("-0").to_string(), "0");
  EXPECT_EQ(decimal::parse("-0.0").to_string(), "0");
  EXPECT_EQ(decimal::parse("+3.25").to_string(), "3.25");
  EXPECT_EQ(decimal::parse(".5").to_string(), "0.5");
  EXPECT_EQ(decimal::parse("5.").to_string(), "5");
}

TEST(Decimal, ParseExponent) {
  EXPECT_EQ(decimal::parse("2.1e3").to_string(), "2100");
  EXPECT_EQ(decimal::parse("1e+1").to_string(), "10");
  EXPECT_EQ(decimal::parse("100e-1").to_string(), "10");
  EXPECT_EQ(decimal::parse("1E2").to_string(), "100");
  EXPECT_EQ(decimal::parse("-2.5e-2").to_string(), "-0.025");
}

TEST(Decimal, ParseRejectsGarbage) {
  for (const char* text : {"", "-", "+", ".", "e5", "1.2.3", "1e", "1e+",
                           "abc", "1 2", "--1", "1-"}) {
    EXPECT_FALSE(decimal::try_parse(text).has_value()) << text;
    EXPECT_THROW(decimal::parse(text), parse_error) << text;
  }
}

TEST(Decimal, CompareIntegers) {
  EXPECT_LT(decimal::parse("2"), decimal::parse("10"));
  EXPECT_LT(decimal::parse("-10"), decimal::parse("-2"));
  EXPECT_LT(decimal::parse("-1"), decimal::parse("1"));
  EXPECT_EQ(decimal::parse("5"), decimal::parse("5.0"));
}

TEST(Decimal, CompareFractions) {
  EXPECT_LT(decimal::parse("0.7"), decimal::parse("35.1"));
  EXPECT_LT(decimal::parse("35.1"), decimal::parse("35.2"));
  EXPECT_LT(decimal::parse("35.19"), decimal::parse("35.2"));
  EXPECT_LT(decimal::parse("0.09"), decimal::parse("0.1"));
  EXPECT_EQ(decimal::parse("0.50"), decimal::parse("0.5"));
  EXPECT_LT(decimal::parse("-0.5"), decimal::parse("0.25"));
  EXPECT_LT(decimal::parse("-1.5"), decimal::parse("-1.25"));
}

TEST(Decimal, CompareMatchesDouble) {
  prng r(99);
  for (int i = 0; i < 2000; ++i) {
    const double a = r.uniform(-1000, 1000);
    const double b = r.uniform(-1000, 1000);
    char buf_a[64];
    char buf_b[64];
    std::snprintf(buf_a, sizeof buf_a, "%.6f", a);
    std::snprintf(buf_b, sizeof buf_b, "%.6f", b);
    const auto da = decimal::parse(buf_a);
    const auto db = decimal::parse(buf_b);
    const double ra = std::strtod(buf_a, nullptr);
    const double rb = std::strtod(buf_b, nullptr);
    EXPECT_EQ(da < db, ra < rb) << buf_a << " vs " << buf_b;
    EXPECT_EQ(da == db, ra == rb) << buf_a << " vs " << buf_b;
  }
}

TEST(Decimal, IntAndFracDigits) {
  const auto d = decimal::parse("3322.67");
  EXPECT_EQ(d.int_digits(), "3322");
  EXPECT_EQ(d.frac_digits(), "67");
  const auto small = decimal::parse("0.25");
  EXPECT_EQ(small.int_digits(), "");
  EXPECT_EQ(small.frac_digits(), "25");
  const auto whole = decimal::parse("100");
  EXPECT_EQ(whole.int_digits(), "100");
  EXPECT_EQ(whole.frac_digits(), "");
}

TEST(Decimal, NegatedAndAbs) {
  EXPECT_EQ(decimal::parse("5").negated().to_string(), "-5");
  EXPECT_EQ(decimal::parse("-5").negated().to_string(), "5");
  EXPECT_EQ(decimal().negated().to_string(), "0");
  EXPECT_EQ(decimal::parse("-12.5").abs().to_string(), "12.5");
}

TEST(Decimal, Truncated) {
  EXPECT_EQ(decimal::parse("35.9").truncated().to_string(), "35");
  EXPECT_EQ(decimal::parse("-35.9").truncated().to_string(), "-35");
  EXPECT_EQ(decimal::parse("0.9").truncated().to_string(), "0");
}

TEST(Decimal, InRange) {
  const auto lo = decimal::parse("0.7");
  const auto hi = decimal::parse("35.1");
  EXPECT_TRUE(in_range(decimal::parse("0.7"), lo, hi));
  EXPECT_TRUE(in_range(decimal::parse("35.1"), lo, hi));
  EXPECT_TRUE(in_range(decimal::parse("12"), lo, hi));
  EXPECT_FALSE(in_range(decimal::parse("35.2"), lo, hi));
  EXPECT_FALSE(in_range(decimal::parse("0.69"), lo, hi));
  EXPECT_FALSE(in_range(decimal::parse("-1"), lo, hi));
}

TEST(Decimal, ToDouble) {
  EXPECT_DOUBLE_EQ(decimal::parse("35.2").to_double(), 35.2);
  EXPECT_DOUBLE_EQ(decimal::parse("-0.5").to_double(), -0.5);
}

TEST(Decimal, OrderingIsTotalOnRandomInputs) {
  prng r(123);
  std::vector<decimal> values;
  for (int i = 0; i < 200; ++i)
    values.push_back(decimal(r.range_i64(-10000, 10000)));
  for (const auto& a : values)
    for (const auto& b : values) {
      const bool lt = a < b;
      const bool gt = b < a;
      const bool eq = a == b;
      EXPECT_EQ(lt + gt + eq, 1);
    }
}

}  // namespace
}  // namespace jrf::util
