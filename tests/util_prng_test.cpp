#include "util/prng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>

namespace jrf::util {
namespace {

TEST(Prng, DeterministicForSameSeed) {
  prng a(42);
  prng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Prng, DifferentSeedsDiverge) {
  prng a(1);
  prng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Prng, BelowStaysInBounds) {
  prng r(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Prng, BelowZeroBound) {
  prng r(7);
  EXPECT_EQ(r.below(0), 0u);
}

TEST(Prng, BelowOneIsAlwaysZero) {
  prng r(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.below(1), 0u);
}

TEST(Prng, BelowCoversAllResidues) {
  prng r(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Prng, RangeInclusiveBounds) {
  prng r(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = r.range_i64(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Prng, UniformInUnitInterval) {
  prng r(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Prng, UniformMeanIsCentered) {
  prng r(13);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Prng, NormalMoments) {
  prng r(17);
  double sum = 0;
  double sq = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Prng, NormalScaled) {
  prng r(19);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += r.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Prng, ChanceExtremes) {
  prng r(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Prng, ChanceApproximatesProbability) {
  prng r(29);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Prng, WeightedRespectsWeights) {
  prng r(31);
  const std::array<double, 3> weights{1.0, 0.0, 3.0};
  std::array<int, 3> counts{};
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[r.weighted(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Prng, AsciiUsesAlphabetOnly) {
  prng r(37);
  const std::string s = r.ascii(500, "abc");
  EXPECT_EQ(s.size(), 500u);
  for (char c : s) EXPECT_TRUE(c == 'a' || c == 'b' || c == 'c');
}

TEST(Prng, PickUniform) {
  prng r(41);
  const std::vector<int> items{10, 20, 30};
  std::set<int> seen;
  for (int i = 0; i < 300; ++i) seen.insert(r.pick(items));
  EXPECT_EQ(seen.size(), 3u);
}

}  // namespace
}  // namespace jrf::util
