#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace jrf::util {
namespace {

TEST(Strings, SplitBasic) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitPreservesEmptyFields) {
  const auto parts = split(",a,,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitEmptyInput) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Strings, JoinRoundTrip) {
  const std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(join(parts, ", "), "x, y, z");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"one"}, ","), "one");
}

TEST(Strings, PrintableByte) {
  EXPECT_EQ(printable_byte('a'), "a");
  EXPECT_EQ(printable_byte('\n'), "\\n");
  EXPECT_EQ(printable_byte('\t'), "\\t");
  EXPECT_EQ(printable_byte(0x01), "\\x01");
  EXPECT_EQ(printable_byte(0xFF), "\\xFF");
}

TEST(Strings, PrintableString) {
  EXPECT_EQ(printable("ab\ncd"), "ab\\ncd");
  EXPECT_EQ(printable(""), "");
}

}  // namespace
}  // namespace jrf::util
