// Tests for the fixed-size worker pool behind the concurrent system paths.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "util/error.hpp"

namespace jrf::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  thread_pool pool(3);
  EXPECT_EQ(pool.worker_count(), 3u);

  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { ++ran; });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, ZeroWorkersDegradesToInline) {
  thread_pool pool(0);
  EXPECT_EQ(pool.worker_count(), 0u);

  // Inline mode: the task ran by the time submit returns, on this thread.
  const auto caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.submit([&] { ran_on = std::this_thread::get_id(); });
  EXPECT_EQ(ran_on, caller);

  std::vector<bool> seen(64, false);
  pool.parallel_for(64, [&](std::size_t i) { seen[i] = true; });
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_TRUE(seen[i]) << i;
  pool.wait_idle();  // no-op, must not hang
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  thread_pool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i)
    EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ParallelForActuallyFansOut) {
  thread_pool pool(4);
  std::mutex mutex;
  std::set<std::thread::id> threads;
  pool.parallel_for(256, [&](std::size_t) {
    // Enough work per index that helpers get a chance to pick some up.
    std::this_thread::sleep_for(std::chrono::microseconds(100));
    std::lock_guard<std::mutex> lock(mutex);
    threads.insert(std::this_thread::get_id());
  });
  EXPECT_GT(threads.size(), 1u);
}

TEST(ThreadPool, ParallelForRethrowsTaskException) {
  thread_pool pool(2);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.parallel_for(50,
                                 [&](std::size_t i) {
                                   ++ran;
                                   if (i == 17) throw error("boom");
                                 }),
               error);
  // Every started index still completed before the rethrow: the pool is
  // reusable afterwards.
  pool.parallel_for(8, [&](std::size_t) { ++ran; });
  EXPECT_GE(ran.load(), 8);
}

TEST(ThreadPool, ParallelForZeroCountIsANoOp) {
  thread_pool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    thread_pool pool(2);
    for (int i = 0; i < 200; ++i) pool.submit([&] { ++ran; });
    // No wait_idle: the destructor must still run every queued task.
  }
  EXPECT_EQ(ran.load(), 200);
}

TEST(ThreadPool, RejectsNullTask) {
  thread_pool pool(1);
  EXPECT_THROW(pool.submit(std::function<void()>{}), error);
  EXPECT_THROW(pool.parallel_for(3, std::function<void(std::size_t)>{}),
               error);
}

}  // namespace
}  // namespace jrf::util
